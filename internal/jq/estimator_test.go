package jq

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/worker"
)

// randomPool draws a pool whose qualities cover the estimator's edge
// cases: the bulk in (0, 1), plus exact coin-flips (q=0.5), sub-half
// workers that Normalize flips, short-circuiting q > 0.99 workers, and
// degenerate q ∈ {0, 1}.
func randomPool(rng *rand.Rand, n int) worker.Pool {
	qs := make([]float64, n)
	for i := range qs {
		switch rng.Intn(10) {
		case 0:
			qs[i] = 0.5
		case 1:
			qs[i] = 0.995 + 0.005*rng.Float64()
		case 2:
			qs[i] = float64(rng.Intn(2)) // exactly 0 or 1
		default:
			qs[i] = rng.Float64()
		}
	}
	return worker.UniformCost(qs, 1)
}

// randomSubset draws a non-empty subset in shuffled (non-canonical)
// order, occasionally with duplicate indices.
func randomSubset(rng *rand.Rand, n int) []int {
	size := 1 + rng.Intn(n)
	perm := rng.Perm(n)
	subset := append([]int(nil), perm[:size]...)
	if size > 1 && rng.Intn(4) == 0 {
		subset[rng.Intn(size)] = subset[rng.Intn(size)]
	}
	return subset
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

var propAlphas = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// The Estimator must reproduce the one-shot Estimate bit for bit —
// value, bound, and work counters — on arbitrary pools, priors, and
// subset sequences, with and without memoization.
func TestEstimatorMatchesEstimateBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		pool := randomPool(rng, n)
		alpha := propAlphas[rng.Intn(len(propAlphas))]
		opts := Options{
			NumBuckets:     []int{1, 5, 50, 200}[rng.Intn(4)],
			DisablePruning: rng.Intn(4) == 0,
			DisableMemo:    rng.Intn(2) == 0,
		}
		est, err := NewEstimator(pool, alpha, opts)
		if err != nil {
			t.Fatalf("NewEstimator: %v", err)
		}
		for trial := 0; trial < 12; trial++ {
			subset := randomSubset(rng, n)
			got, err := est.Eval(subset)
			if err != nil {
				t.Fatalf("Eval(%v): %v", subset, err)
			}
			want, err := Estimate(pool.Subset(sortedInts(subset)), alpha, opts)
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			if got != want {
				t.Fatalf("seed %d subset %v alpha %v opts %+v:\n got %+v\nwant %+v",
					seed, subset, alpha, opts, got, want)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Revisiting a jury — in any index order — must hit the memo and return
// the identical Result.
func TestEstimatorMemoization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := randomPool(rng, 12)
	est, err := NewEstimator(pool, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := est.Eval([]int{4, 1, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	again, err := est.Eval([]int{9, 2, 4, 1}) // same set, different order
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("memoized revisit differs: %+v vs %+v", first, again)
	}
	stats := est.Stats()
	if stats.Evals != 2 || stats.Hits != 1 || stats.Misses != 1 || stats.MemoEntries != 1 {
		t.Fatalf("stats = %+v, want 2 evals, 1 hit, 1 miss, 1 entry", stats)
	}
	disabled, err := NewEstimator(pool, 0.3, Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disabled.Eval([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := disabled.Eval([]int{2, 1}); err != nil {
		t.Fatal(err)
	}
	if s := disabled.Stats(); s.Hits != 0 || s.MemoEntries != 0 {
		t.Fatalf("memo disabled but stats = %+v", s)
	}
}

func TestEstimatorMemoLimit(t *testing.T) {
	pool := randomPool(rand.New(rand.NewSource(8)), 10)
	est, err := NewEstimator(pool, 0.5, Options{MemoLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := est.Eval([]int{i}); err != nil {
			t.Fatal(err)
		}
	}
	if s := est.Stats(); s.MemoEntries > 2 {
		t.Fatalf("memo grew past its limit: %+v", s)
	}
}

func TestEstimatorEvalBitsMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool := randomPool(rng, 70) // spans two mask words
	est, err := NewEstimator(pool, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		subset := randomSubset(rng, len(pool))
		mask := make([]uint64, 2)
		for _, i := range subset {
			mask[i/64] |= 1 << uint(i%64)
		}
		// The mask deduplicates; compare against the deduplicated set.
		seen := map[int]bool{}
		var unique []int
		for _, i := range sortedInts(subset) {
			if !seen[i] {
				seen[i] = true
				unique = append(unique, i)
			}
		}
		fromBits, err := est.EvalBits(mask)
		if err != nil {
			t.Fatal(err)
		}
		fromIdx, err := est.Eval(unique)
		if err != nil {
			t.Fatal(err)
		}
		if fromBits != fromIdx {
			t.Fatalf("EvalBits %+v != Eval %+v for %v", fromBits, fromIdx, unique)
		}
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(nil, 0.5, Options{}); !errors.Is(err, worker.ErrEmptyPool) {
		t.Fatalf("nil pool: got %v", err)
	}
	pool := worker.UniformCost([]float64{0.7, 0.8}, 1)
	if _, err := NewEstimator(pool, -0.1, Options{}); !errors.Is(err, ErrPriorRange) {
		t.Fatalf("bad prior: got %v", err)
	}
	if _, err := NewEstimator(pool, 0.5, Options{NumBuckets: -1}); err == nil {
		t.Fatal("negative buckets accepted")
	}
	est, err := NewEstimator(pool, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Eval(nil); !errors.Is(err, worker.ErrEmptyPool) {
		t.Fatalf("empty subset: got %v", err)
	}
	if _, err := est.Eval([]int{2}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("out of range: got %v", err)
	}
	if _, err := est.Eval([]int{-1}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("negative index: got %v", err)
	}
}

// Steady-state evaluation must not allocate beyond the memo table; with
// the memo disabled it must be allocation-free on revisited shapes.
func TestEstimatorSteadyStateAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Qualities in [0.5, 0.99] so no subset short-circuits: every Eval
	// must run the full bucket DP, the expensive path this test guards.
	qs := make([]float64, 40)
	for i := range qs {
		qs[i] = 0.5 + 0.49*rng.Float64()
	}
	pool := worker.UniformCost(qs, 1)
	est, err := NewEstimator(pool, 0.5, Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	subsets := make([][]int, 8)
	for i := range subsets {
		subsets[i] = randomSubset(rng, len(pool))
		if _, err := est.Eval(subsets[i]); err != nil { // warm scratch
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, s := range subsets {
			if _, err := est.Eval(s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Eval allocates %v times per 8-subset round, want 0", allocs)
	}
}

// The MV delta evaluator must reproduce MajorityClosedForm bit for bit
// across arbitrary subset sequences (the rollback/extend machinery must
// not disturb a single ulp).
func TestMVEvaluatorMatchesClosedFormBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		pool := randomPool(rng, n)
		alpha := propAlphas[rng.Intn(len(propAlphas))]
		eval, err := NewMVEvaluator(pool, alpha)
		if err != nil {
			t.Fatalf("NewMVEvaluator: %v", err)
		}
		for trial := 0; trial < 16; trial++ {
			subset := randomSubset(rng, n)
			got, err := eval.Eval(subset)
			if err != nil {
				t.Fatalf("Eval(%v): %v", subset, err)
			}
			want, err := MajorityClosedForm(pool.Subset(sortedInts(subset)), alpha)
			if err != nil {
				t.Fatalf("MajorityClosedForm: %v", err)
			}
			if got != want {
				t.Fatalf("seed %d subset %v alpha %v: got %v (%x) want %v (%x)",
					seed, subset, alpha, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// An annealing-shaped workload — add, swap, remove one worker at a time —
// must run incrementally: appended DP rows stay near one per eval.
func TestMVEvaluatorIncrementalWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := randomPool(rng, 30)
	eval, err := NewMVEvaluator(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	current := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if _, err := eval.Eval(current); err != nil {
		t.Fatal(err)
	}
	base := eval.Stats().Appended
	evals := 0
	for step := 0; step < 200; step++ {
		// Swap the last member against a random outsider: the canonical
		// prefix is shared, so only the tail re-extends.
		current[len(current)-1] = 8 + rng.Intn(len(pool)-8)
		if _, err := eval.Eval(current); err != nil {
			t.Fatal(err)
		}
		evals++
	}
	appended := eval.Stats().Appended - base
	if appended > 2*evals {
		t.Fatalf("tail-swap workload appended %d rows over %d evals, want ≤ %d",
			appended, evals, 2*evals)
	}
}

func TestMVEvaluatorValidation(t *testing.T) {
	pool := worker.UniformCost([]float64{0.7, 0.8}, 1)
	if _, err := NewMVEvaluator(nil, 0.5); !errors.Is(err, worker.ErrEmptyPool) {
		t.Fatalf("nil pool: got %v", err)
	}
	if _, err := NewMVEvaluator(pool, 2); !errors.Is(err, ErrPriorRange) {
		t.Fatalf("bad prior: got %v", err)
	}
	eval, err := NewMVEvaluator(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.Eval(nil); !errors.Is(err, worker.ErrEmptyPool) {
		t.Fatalf("empty subset: got %v", err)
	}
	if _, err := eval.Eval([]int{5}); !errors.Is(err, ErrIndexRange) {
		t.Fatalf("out of range: got %v", err)
	}
}

// The exact-BV evaluator must reproduce ExactBV bit for bit.
func TestExactBVEvaluatorMatchesExactBV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		pool := randomPool(rng, n)
		alpha := propAlphas[rng.Intn(len(propAlphas))]
		eval, err := NewExactBVEvaluator(pool, alpha)
		if err != nil {
			t.Fatalf("NewExactBVEvaluator: %v", err)
		}
		for trial := 0; trial < 8; trial++ {
			subset := randomSubset(rng, n)
			got, err := eval.Eval(subset)
			if err != nil {
				t.Fatalf("Eval(%v): %v", subset, err)
			}
			want, err := ExactBV(pool.Subset(sortedInts(subset)), alpha)
			if err != nil {
				t.Fatalf("ExactBV: %v", err)
			}
			if got != want {
				t.Fatalf("seed %d subset %v: got %x want %x",
					seed, subset, math.Float64bits(got), math.Float64bits(want))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBVEvaluatorRejectsHugeJury(t *testing.T) {
	qs := make([]float64, MaxExactJurySize+1)
	for i := range qs {
		qs[i] = 0.6
	}
	eval, err := NewExactBVEvaluator(worker.UniformCost(qs, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(qs))
	for i := range all {
		all[i] = i
	}
	if _, err := eval.Eval(all); !errors.Is(err, ErrJuryTooLarge) {
		t.Fatalf("oversized jury: got %v", err)
	}
}

// FuzzEstimatorMatchesEstimate drives arbitrary byte strings into
// (pool, prior, subset-sequence) configurations and checks that the
// Estimator and MVEvaluator stay bit-identical to their one-shot
// counterparts. Run with
// `go test -fuzz FuzzEstimatorMatchesEstimate ./internal/jq` for
// exploration; the seed corpus runs on every `go test`.
func FuzzEstimatorMatchesEstimate(f *testing.F) {
	f.Add([]byte{128, 150, 200}, byte(128), uint16(50), []byte{0, 1, 2})
	f.Add([]byte{255, 0, 128, 64, 192}, byte(0), uint16(10), []byte{4, 2, 2, 0})
	f.Add([]byte{130, 131, 132, 133, 134}, byte(255), uint16(400), []byte{1, 3})
	f.Add([]byte{128}, byte(127), uint16(1), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, qualityBytes []byte, alphaByte byte, bucketsRaw uint16, subsetBytes []byte) {
		if len(qualityBytes) == 0 || len(qualityBytes) > 12 {
			t.Skip()
		}
		if len(subsetBytes) == 0 || len(subsetBytes) > 24 {
			t.Skip()
		}
		qs := make([]float64, len(qualityBytes))
		for i, b := range qualityBytes {
			qs[i] = float64(b) / 255
		}
		alpha := float64(alphaByte) / 255
		opts := Options{NumBuckets: int(bucketsRaw%2000) + 1}
		pool := worker.UniformCost(qs, 1)

		est, err := NewEstimator(pool, alpha, opts)
		if err != nil {
			t.Fatalf("NewEstimator: %v", err)
		}
		mv, err := NewMVEvaluator(pool, alpha)
		if err != nil {
			t.Fatalf("NewMVEvaluator: %v", err)
		}
		// Interpret subsetBytes as a sequence of juries: each byte toggles
		// a worker in a rolling membership set, and every state is
		// evaluated by both engines.
		member := make([]bool, len(qs))
		for _, b := range subsetBytes {
			i := int(b) % len(qs)
			member[i] = !member[i]
			var subset []int
			for j, in := range member {
				if in {
					subset = append(subset, j)
				}
			}
			if len(subset) == 0 {
				continue
			}
			got, err := est.Eval(subset)
			if err != nil {
				t.Fatalf("Eval(%v): %v", subset, err)
			}
			want, err := Estimate(pool.Subset(subset), alpha, opts)
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			if got != want {
				t.Fatalf("estimator mismatch on %v: got %+v want %+v", subset, got, want)
			}
			gotMV, err := mv.Eval(subset)
			if err != nil {
				t.Fatalf("mv.Eval(%v): %v", subset, err)
			}
			wantMV, err := MajorityClosedForm(pool.Subset(subset), alpha)
			if err != nil {
				t.Fatalf("MajorityClosedForm: %v", err)
			}
			if gotMV != wantMV {
				t.Fatalf("mv mismatch on %v: got %x want %x",
					subset, math.Float64bits(gotMV), math.Float64bits(wantMV))
			}
		}
	})
}
