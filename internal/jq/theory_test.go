package jq

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/voting"
	"repro/internal/worker"
)

// homogeneous returns a jury of n identical-quality workers.
func homogeneous(n int, q float64) worker.Pool {
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = q
	}
	return worker.UniformCost(qs, 1)
}

// For identical qualities q ≥ 0.5, odd jury sizes, and a uniform prior,
// Bayesian voting degenerates to majority voting (all log-odds weights are
// equal and ties are impossible), so their JQs must coincide exactly.
func TestBVEqualsMVForHomogeneousOddJuriesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2*rng.Intn(5) + 1 // odd in [1, 9]
		q := 0.5 + 0.49*rng.Float64()
		pool := homogeneous(n, q)
		bv, err := ExactBV(pool, 0.5)
		if err != nil {
			return false
		}
		mv, err := MajorityClosedForm(pool, 0.5)
		if err != nil {
			return false
		}
		return math.Abs(bv-mv) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Binomial closed form: for identical q and odd n,
// JQ(MV) = Σ_{k ≥ (n+1)/2} C(n,k) q^k (1−q)^{n−k}.
func TestMajorityBinomialClosedForm(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 11} {
		for _, q := range []float64{0.5, 0.6, 0.7, 0.85, 0.99} {
			got, err := MajorityClosedForm(homogeneous(n, q), 0.5)
			if err != nil {
				t.Fatal(err)
			}
			var want float64
			for k := (n + 1) / 2; k <= n; k++ {
				want += binomial(n, k) * math.Pow(q, float64(k)) * math.Pow(1-q, float64(n-k))
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d q=%v: JQ = %v, binomial formula = %v", n, q, got, want)
			}
		}
	}
}

func binomial(n, k int) float64 {
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(k-i)
	}
	return res
}

// Condorcet Jury Theorem: with identical q > 0.5, JQ grows monotonically
// over odd jury sizes and tends to 1.
func TestCondorcetJuryTheorem(t *testing.T) {
	const q = 0.6
	prev := 0.0
	for n := 1; n <= 21; n += 2 {
		jqv, err := ExactBV(homogeneous(n, q), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if jqv < prev-1e-12 {
			t.Fatalf("JQ decreased at n=%d: %v -> %v", n, prev, jqv)
		}
		prev = jqv
	}
	if prev < 0.82 {
		t.Fatalf("JQ at n=21, q=0.6 is %v; Condorcet convergence too slow", prev)
	}
	// And the reverse for q < 0.5 under MV (not BV, which reinterprets):
	// majority of bad voters is worse than one bad voter.
	bad1, err := MajorityClosedForm(homogeneous(1, 0.4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad9, err := MajorityClosedForm(homogeneous(9, 0.4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bad9 >= bad1 {
		t.Fatalf("MV with 9 bad voters (%v) not worse than 1 (%v)", bad9, bad1)
	}
	// BV is immune: it flips their votes.
	bv9, err := ExactBV(homogeneous(9, 0.4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bv9good, err := ExactBV(homogeneous(9, 0.6), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bv9-bv9good) > 1e-12 {
		t.Fatalf("BV with q=0.4 jurors (%v) != with q=0.6 jurors (%v)", bv9, bv9good)
	}
}

// Adding a q=0.5 worker never changes the BV JQ: a coin flip carries no
// evidence.
func TestCoinFlipWorkerIsNeutralProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		alpha := rng.Float64()
		base, err := ExactBV(worker.UniformCost(qs, 1), alpha)
		if err != nil {
			return false
		}
		extended, err := ExactBV(worker.UniformCost(append(qs, 0.5), 1), alpha)
		if err != nil {
			return false
		}
		return math.Abs(base-extended) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The JQ computations are pure; concurrent use from many goroutines must
// be safe (run with -race).
func TestEstimateConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	qs := make([]float64, 40)
	for i := range qs {
		qs[i] = 0.5 + 0.45*rng.Float64()
	}
	pool := worker.UniformCost(qs, 1)
	want, err := Estimate(pool, 0.5, Options{NumBuckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := Estimate(pool, 0.5, Options{NumBuckets: 50})
				if err != nil {
					errs <- err
					return
				}
				if res.JQ != want.JQ {
					errs <- errMismatch{res.JQ, want.JQ}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{ got, want float64 }

func (e errMismatch) Error() string { return "concurrent estimate mismatch" }

// Exact JQ of every built-in strategy is invariant under jury permutation.
func TestJQPermutationInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.05 + 0.9*rng.Float64()
		}
		alpha := rng.Float64()
		perm := rng.Perm(n)
		shuffled := make([]float64, n)
		for i, p := range perm {
			shuffled[i] = qs[p]
		}
		for _, s := range []voting.Strategy{voting.Majority{}, voting.Bayesian{}, voting.RandomizedMajority{}} {
			a, err := Exact(worker.UniformCost(qs, 1), s, alpha)
			if err != nil {
				return false
			}
			b, err := Exact(worker.UniformCost(shuffled, 1), s, alpha)
			if err != nil {
				return false
			}
			if math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
