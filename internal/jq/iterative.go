package jq

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/worker"
)

// MaxIterativeStates bounds the state map of ExactIterative. The state
// count is the number of distinct likelihood-ratio values over all
// votings: worst case 2^n, but only n+1 for homogeneous juries and
// Π(m_i+1) when qualities repeat with multiplicities m_i.
const MaxIterativeStates = 1 << 20

// Errors specific to the iterative exact computation.
var (
	ErrStateExplosion    = errors.New("jq: iterative computation exceeded the state budget")
	ErrDegenerateQuality = errors.New("jq: iterative computation requires qualities strictly inside (0, 1)")
)

// ExactIterative computes JQ(J, BV, α) exactly with the paper's iterative
// (key, prob) construction (Figure 4), using exact rational arithmetic for
// the keys: the key of a voting V is the likelihood ratio
// R(V) = P(V|t=0)/P(V|t=1) as a big.Rat, so votings with equal evidence
// merge into one state with no floating-point collisions or misses.
//
// Unlike ExactBV (always 2^n work), the cost is proportional to the number
// of *distinct* ratio values: juries whose qualities repeat — homogeneous
// pools, or pools drawn from a few quality levels — are handled exactly at
// sizes far beyond MaxExactJurySize. The computation fails with
// ErrStateExplosion if the state map would exceed MaxIterativeStates, and
// with ErrDegenerateQuality for workers of quality exactly 0 or 1 (whose
// ratio is 0 or infinite; such workers decide the task alone).
func ExactIterative(pool worker.Pool, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	qs := pool.Qualities()
	for _, q := range qs {
		if q <= 0 || q >= 1 {
			return 0, fmt.Errorf("%w: got %v", ErrDegenerateQuality, q)
		}
	}

	type state struct {
		ratio *big.Rat // R(V) = P(V|0)/P(V|1), exact
		p0    float64  // Σ P(V|0) over votings in this state
	}
	states := map[string]*state{"1": {ratio: big.NewRat(1, 1), p0: 1}}
	for _, q := range qs {
		qRat := new(big.Rat).SetFloat64(q)
		oneMinus := new(big.Rat).Sub(big.NewRat(1, 1), qRat)
		up := new(big.Rat).Quo(qRat, oneMinus) // vote 0 multiplies R by q/(1−q)
		down := new(big.Rat).Inv(up)           // vote 1 multiplies R by (1−q)/q
		qF, _ := qRat.Float64()                // exact: q is a binary rational
		next := make(map[string]*state, 2*len(states))
		add := func(r *big.Rat, p0 float64) {
			key := r.RatString()
			if s, ok := next[key]; ok {
				s.p0 += p0
				return
			}
			next[key] = &state{ratio: r, p0: p0}
		}
		for _, s := range states {
			add(new(big.Rat).Mul(s.ratio, up), s.p0*qF)
			add(new(big.Rat).Mul(s.ratio, down), s.p0*(1-qF))
		}
		if len(next) > MaxIterativeStates {
			return 0, fmt.Errorf("%w: %d states", ErrStateExplosion, len(next))
		}
		states = next
	}

	// BV answers 0 on a state iff α·P(V|0) ≥ (1−α)·P(V|1), i.e.
	// R(V) ≥ (1−α)/α; each state contributes the larger posterior mass.
	var jqv float64
	switch alpha {
	case 0:
		return 1, nil // truth is certainly 1; BV says 1 always
	case 1:
		return 1, nil
	}
	// Build (1−α)/α exactly from α's binary representation rather than
	// from the rounded float quotient.
	aRat := new(big.Rat).SetFloat64(alpha)
	threshold := new(big.Rat).Quo(new(big.Rat).Sub(big.NewRat(1, 1), aRat), aRat)
	for _, s := range states {
		rF, _ := s.ratio.Float64()
		p1 := s.p0 / rF // P(V|1) mass of the state
		if s.ratio.Cmp(threshold) >= 0 {
			jqv += alpha * s.p0
		} else {
			jqv += (1 - alpha) * p1
		}
	}
	return jqv, nil
}

// DistinctEvidenceStates reports how many distinct likelihood-ratio states
// the iterative computation would traverse for this jury — a cheap
// feasibility probe before calling ExactIterative. It stops counting (and
// returns MaxIterativeStates+1) once the budget is exceeded.
func DistinctEvidenceStates(pool worker.Pool) int {
	ratios := map[string]bool{"1": true}
	for _, w := range pool {
		q := w.Quality
		if q <= 0 || q >= 1 {
			return MaxIterativeStates + 1
		}
		qRat := new(big.Rat).SetFloat64(q)
		oneMinus := new(big.Rat).Sub(big.NewRat(1, 1), qRat)
		up := new(big.Rat).Quo(qRat, oneMinus)
		down := new(big.Rat).Inv(up)
		next := make(map[string]bool, 2*len(ratios))
		for key := range ratios {
			r, _ := new(big.Rat).SetString(key)
			next[new(big.Rat).Mul(r, up).RatString()] = true
			next[new(big.Rat).Mul(r, down).RatString()] = true
		}
		if len(next) > MaxIterativeStates {
			return MaxIterativeStates + 1
		}
		ratios = next
	}
	return len(ratios)
}
