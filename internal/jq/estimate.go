package jq

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/worker"
)

// dpBuffers recycles the dense DP arrays across Estimate calls: the
// annealing search evaluates thousands of juries, and the two O(n·buckets)
// slices dominated its allocation profile. Buffers are returned all-zero
// (the DP zeroes every slot it consumes), so acquisition never needs to
// clear them.
var dpBuffers = sync.Pool{New: func() any { b := make([]float64, 0); return &b }}

func acquireBuffer(size int) *[]float64 {
	b := dpBuffers.Get().(*[]float64)
	if cap(*b) < size {
		*b = make([]float64, size)
	}
	*b = (*b)[:size]
	return b
}

// DefaultNumBuckets is the bucket count used by the paper's experiments
// (Section 6.1.1). The analytic error bound below 1% needs numBuckets ≥
// 200·n; in practice 50 buckets already yields errors under 0.01% (Figure
// 9c), which this reproduction confirms.
const DefaultNumBuckets = 50

// HighQualityCutoff is the quality above which Estimate short-circuits: a
// single worker with q > 0.99 already pins JQ into (0.99, 1] (Lemma 1), so
// the estimate returns that quality directly, keeping the error below 1%
// and φ(q) = ln(q/(1−q)) bounded by φ(0.99) < 5 (Section 4.4).
const HighQualityCutoff = 0.99

// Options configures Estimate and NewEstimator.
type Options struct {
	// NumBuckets is the number of equal-width buckets dividing
	// [0, max φ(q_i)]. Zero selects DefaultNumBuckets.
	NumBuckets int
	// DisablePruning turns off the Algorithm 2 pruning; results are
	// identical, only slower. Used by the Figure 9(d) experiment.
	DisablePruning bool
	// DisableMemo turns off the Estimator's result memoization. Ignored
	// by the one-shot Estimate, which never memoizes.
	DisableMemo bool
	// MemoLimit caps the number of juries the Estimator memoizes; zero
	// selects DefaultMemoLimit. Ignored by Estimate.
	MemoLimit int
}

// Result carries the estimate and the work counters used by the pruning
// experiments.
type Result struct {
	// JQ is the estimated jury quality. It never exceeds the true
	// JQ(J, BV, α) (the bucketed decision rule is itself a deterministic
	// voting strategy, and BV is optimal).
	JQ float64
	// Bound is the analytic additive error bound e^{n·Δ/4} − 1 for this
	// run's bucket width Δ; the true JQ lies in [JQ, JQ+Bound].
	Bound float64
	// KeysVisited counts (key, prob) pairs expanded across iterations.
	KeysVisited int
	// KeysPruned counts pairs resolved early by the pruning rule.
	KeysPruned int
	// ShortCircuited reports that a worker above HighQualityCutoff (or a
	// degenerate all-q=0.5 jury) resolved the estimate without running the
	// bucket DP.
	ShortCircuited bool
}

// Estimate approximates JQ(J, BV, α) with the paper's Algorithm 1:
//
//  1. reduce the prior to a pseudo-worker (Theorem 3) and reinterpret
//     workers with q < 0.5 as quality 1−q (Section 3.3);
//  2. map each worker's log-odds φ(q_i) = ln(q_i/(1−q_i)) to an integer
//     bucket b_i = ⌈φ(q_i)/Δ − ½⌉ with Δ = upper/numBuckets;
//  3. run the iterative (key, prob) dynamic program over the bucketed
//     log-likelihood-ratio R(V), pruning keys whose sign can no longer
//     change (Algorithm 2);
//  4. sum the probability mass of keys > 0 plus half the mass at key = 0.
//
// The returned estimate is a lower bound on the true JQ with additive error
// below Result.Bound, which is < 1% when numBuckets ≥ 200·n (Section 4.4).
// Time is O(numBuckets · n²) and memory O(numBuckets · n).
func Estimate(pool worker.Pool, alpha float64, opts Options) (Result, error) {
	if err := pool.Validate(); err != nil {
		return Result{}, err
	}
	if err := checkPrior(alpha); err != nil {
		return Result{}, err
	}
	if opts.NumBuckets == 0 {
		opts.NumBuckets = DefaultNumBuckets
	}
	if opts.NumBuckets < 1 {
		return Result{}, fmt.Errorf("jq: NumBuckets must be positive, got %d", opts.NumBuckets)
	}
	withPrior := WithPrior(pool, alpha)
	normalized, _ := withPrior.Normalize()
	qs := normalized.Qualities()

	// High-quality short-circuit (Section 4.4): JQ ≥ max q_i by Lemma 1,
	// so with q > 0.99 returning q keeps the error under 1% while keeping
	// φ bounded for everyone else.
	maxQ := 0.0
	for _, q := range qs {
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ > HighQualityCutoff {
		return Result{JQ: maxQ, Bound: 1 - maxQ, ShortCircuited: true}, nil
	}

	// Bucketize. upper = max φ(q_i); all-q=0.5 juries have upper = 0 and
	// JQ exactly 0.5.
	n := len(qs)
	phis := make([]float64, n)
	upper := 0.0
	for i, q := range qs {
		phis[i] = math.Log(q / (1 - q)) // q ∈ [0.5, 0.99] ⇒ φ ∈ [0, ~4.6]
		if phis[i] > upper {
			upper = phis[i]
		}
	}
	if upper == 0 {
		return Result{JQ: 0.5, ShortCircuited: true}, nil
	}
	delta := upper / float64(opts.NumBuckets)
	workers := make([]bucketedWorker, n)
	span := 0
	for i := range qs {
		workers[i] = bucketedWorker{b: bucketOf(phis[i], delta), q: qs[i]}
		span += workers[i].b
	}

	res := Result{Bound: ErrorBound(n, upper, opts.NumBuckets)}
	curBuf, nextBuf := acquireBuffer(2*span+1), acquireBuffer(2*span+1)
	defer dpBuffers.Put(curBuf)
	defer dpBuffers.Put(nextBuf)
	bucketDP(workers, make([]int, n+1), *curBuf, *nextBuf, opts.DisablePruning, &res)
	return res, nil
}

// bucketedWorker is one jury member after bucketization: the integer
// log-odds bucket b and the (normalized) quality q.
type bucketedWorker struct {
	b int
	q float64
}

// bucketOf maps a log-odds value to its integer bucket, b = ⌈φ/Δ − ½⌉.
func bucketOf(phi, delta float64) int {
	return int(math.Ceil(phi/delta - 0.5))
}

// bucketDP runs the sorted (key, prob) dynamic program of Algorithms 1–2
// over the bucketized jury, accumulating the estimate and work counters
// into res. It is the single shared core of Estimate and Estimator, which
// keeps the two paths bit-identical by construction.
//
// workers holds the jury in evaluation order and is sorted in place by
// decreasing bucket. aggregate must have length len(workers)+1; cur and
// next must both be all-zero with length 2·span+1 where span = Σ b_i, and
// are returned all-zero (every consumed slot is re-zeroed).
func bucketDP(workers []bucketedWorker, aggregate []int, cur, next []float64, disablePruning bool, res *Result) {
	n := len(workers)
	// Sort by decreasing bucket so the largest keys appear first, making
	// the pruning suffix-bound as tight as possible as early as possible.
	// slices.SortFunc (unlike sort.Slice) does not box its argument, which
	// keeps steady-state Estimator evaluations allocation-free.
	slices.SortFunc(workers, func(a, b bucketedWorker) int { return b.b - a.b })

	// aggregate[i] = Σ_{j ≥ i} b_j: the largest swing the remaining
	// workers can still apply to a key (Algorithm 2's AggregateBucket).
	aggregate[n] = 0
	for i := n - 1; i >= 0; i-- {
		aggregate[i] = aggregate[i+1] + workers[i].b
	}
	span := aggregate[0] // Σ b_i bounds |key| over the whole run

	// Dense DP over keys in [−span, span], stored at offset +span. The two
	// buffers are swapped each iteration; [lo, hi] tracks the live window.
	cur[span] = 1 // SM[0] = 1
	lo, hi := span, span
	var estimate float64
	for i := 0; i < n; i++ {
		b, q := workers[i].b, workers[i].q
		remaining := aggregate[i]
		newLo, newHi := len(next), -1
		for k := lo; k <= hi; k++ {
			prob := cur[k]
			if prob == 0 {
				continue
			}
			cur[k] = 0
			res.KeysVisited++
			key := k - span
			if !disablePruning {
				// Algorithm 2: once |key| exceeds the remaining swing the
				// final sign is fixed; positive keys contribute their full
				// descendant mass (the vote-probability factors sum to 1),
				// negative keys contribute nothing.
				if key > 0 && key-remaining > 0 {
					estimate += prob
					res.KeysPruned++
					continue
				}
				if key < 0 && key+remaining < 0 {
					res.KeysPruned++
					continue
				}
			}
			up, down := k+b, k-b
			next[up] += prob * q // v_i = 0: key + b_i, weight q_i
			next[down] += prob * (1 - q)
			if down < newLo {
				newLo = down
			}
			if up > newHi {
				newHi = up
			}
		}
		cur, next = next, cur
		if newHi < newLo { // everything pruned
			lo, hi = span, span
			cur[span] = 0
			break
		}
		lo, hi = newLo, newHi
	}
	// Final evaluation: keys > 0 contribute fully, key = 0 half.
	for k := lo; k <= hi; k++ {
		prob := cur[k]
		if prob == 0 {
			continue
		}
		cur[k] = 0
		switch key := k - span; {
		case key > 0:
			estimate += prob
		case key == 0:
			estimate += 0.5 * prob
		}
	}
	res.JQ = estimate
}

// ErrorBound returns the additive approximation bound of Section 4.4,
// e^{n·Δ/4} − 1 with bucket width Δ = upper/numBuckets. Setting
// numBuckets = d·n with d ≥ 200 and upper < 5 keeps it under 0.627%.
func ErrorBound(n int, upper float64, numBuckets int) float64 {
	if numBuckets < 1 || n < 1 || upper <= 0 {
		return 0
	}
	delta := upper / float64(numBuckets)
	return math.Exp(float64(n)*delta/4) - 1
}
