package jq

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/voting"
	"repro/internal/worker"
)

func pool(qs ...float64) worker.Pool {
	return worker.UniformCost(qs, 1)
}

// figure2Pool is the worked example of Figure 2 / Examples 2–3: three
// workers with qualities 0.9, 0.6, 0.6 and a uniform prior.
func figure2Pool() worker.Pool { return pool(0.9, 0.6, 0.6) }

func TestExampleFigure2MajorityJQ(t *testing.T) {
	got, err := Exact(figure2Pool(), voting.Majority{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.792) > 1e-12 {
		t.Fatalf("JQ(J, MV, 0.5) = %v, want 0.792 (paper Example 2)", got)
	}
}

func TestExampleFigure2BayesianJQ(t *testing.T) {
	got, err := ExactBV(figure2Pool(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("JQ(J, BV, 0.5) = %v, want 0.90 (paper Example 3)", got)
	}
	// The generic evaluator must agree with the fast path.
	generic, err := Exact(figure2Pool(), voting.Bayesian{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(generic-got) > 1e-12 {
		t.Fatalf("generic JQ(BV) = %v, fast path = %v", generic, got)
	}
}

func TestIntroductionJuryBEF(t *testing.T) {
	// Section 1: jury {B, E, F} with qualities 0.7, 0.6, 0.6 has
	// JQ under MV of 69.6%.
	got, err := Exact(pool(0.7, 0.6, 0.6), voting.Majority{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.696) > 1e-12 {
		t.Fatalf("JQ = %v, want 0.696 (paper Section 1)", got)
	}
}

func TestSingleWorkerJQ(t *testing.T) {
	// A single worker's BV JQ at uniform prior is max(q, 1−q).
	for _, q := range []float64{0.5, 0.6, 0.8, 0.3} {
		got, err := ExactBV(pool(q), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(q, 1-q)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("q=%v: JQ = %v, want %v", q, got, want)
		}
	}
}

func TestExactInputValidation(t *testing.T) {
	if _, err := ExactBV(nil, 0.5); !errors.Is(err, worker.ErrEmptyPool) {
		t.Errorf("empty pool: err = %v", err)
	}
	if _, err := ExactBV(pool(0.7), 1.2); !errors.Is(err, ErrPriorRange) {
		t.Errorf("bad prior: err = %v", err)
	}
	big := make(worker.Pool, MaxExactJurySize+1)
	for i := range big {
		big[i] = worker.Worker{Quality: 0.7, Cost: 1}
	}
	if _, err := ExactBV(big, 0.5); !errors.Is(err, ErrJuryTooLarge) {
		t.Errorf("oversized jury: err = %v", err)
	}
	if _, err := Exact(big, voting.Majority{}, 0.5); !errors.Is(err, ErrJuryTooLarge) {
		t.Errorf("oversized jury (generic): err = %v", err)
	}
}

func TestMajorityClosedFormMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(9) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.5 + rng.Float64()/2
		}
		alpha := rng.Float64()
		p := pool(qs...)
		want, err := Exact(p, voting.Majority{}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MajorityClosedForm(p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("n=%d α=%v: closed form %v != enumeration %v (qs=%v)", n, alpha, got, want, qs)
		}
	}
}

func TestHalfClosedFormMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.5 + rng.Float64()/2
		}
		alpha := rng.Float64()
		p := pool(qs...)
		want, err := Exact(p, voting.Half{}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HalfClosedForm(p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("n=%d α=%v: closed form %v != enumeration %v", n, alpha, got, want)
		}
	}
}

func TestRandomizedMajorityClosedFormMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(8) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		alpha := rng.Float64()
		p := pool(qs...)
		want, err := Exact(p, voting.RandomizedMajority{}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RandomizedMajorityClosedForm(p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("closed form %v != enumeration %v", got, want)
		}
	}
}

func TestRandomBallotJQIsHalf(t *testing.T) {
	got, err := Exact(pool(0.9, 0.95, 0.99), voting.RandomBallot{}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("JQ(RBV) = %v, want 0.5", got)
	}
	if RandomBallotClosedForm() != 0.5 {
		t.Fatal("RandomBallotClosedForm() != 0.5")
	}
}

// Theorem 1 / Corollary 1: BV maximizes JQ over every strategy.
func TestBVOptimalityProperty(t *testing.T) {
	strategies := voting.All()
	f := func(seed int64, n uint8, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%8) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.05 + 0.9*rng.Float64()
		}
		alpha := float64(alphaRaw) / 255
		p := pool(qs...)
		best, err := ExactBV(p, alpha)
		if err != nil {
			return false
		}
		for _, s := range strategies {
			jqS, err := Exact(p, s, alpha)
			if err != nil {
				return false
			}
			if jqS > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// BV is also optimal against arbitrary randomized strategies, not just the
// built-ins: any h(V) ∈ [0,1] yields JQ ≤ JQ(BV).
func TestBVBeatsArbitraryRandomizedStrategiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(6) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		alpha := rng.Float64()
		p := pool(qs...)
		best, err := ExactBV(p, alpha)
		if err != nil {
			return false
		}
		s := randomizedTableStrategy{h: make(map[uint32]float64), rng: rng}
		got, err := Exact(p, s, alpha)
		if err != nil {
			return false
		}
		return got <= best+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// randomizedTableStrategy returns an arbitrary (but fixed per pattern)
// probability for each vote pattern — a random point in strategy space Θ.
type randomizedTableStrategy struct {
	h   map[uint32]float64
	rng *rand.Rand
}

func (randomizedTableStrategy) Name() string        { return "RANDTABLE" }
func (randomizedTableStrategy) Deterministic() bool { return false }

func (s randomizedTableStrategy) ProbZero(votes []voting.Vote, qualities []float64, alpha float64) (float64, error) {
	var key uint32
	for i, v := range votes {
		if v == voting.Yes {
			key |= 1 << uint(i)
		}
	}
	if p, ok := s.h[key]; ok {
		return p, nil
	}
	p := s.rng.Float64()
	s.h[key] = p
	return p, nil
}

// Lemma 1: adding a worker never decreases JQ under BV.
func TestLemma1MonotoneJurySizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(7) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + rng.Float64()/2
		}
		alpha := rng.Float64()
		base, err := ExactBV(pool(qs...), alpha)
		if err != nil {
			return false
		}
		extended, err := ExactBV(pool(append(qs, 0.5+rng.Float64()/2)...), alpha)
		if err != nil {
			return false
		}
		return extended >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2: raising one worker's quality (≥ 0.5) never decreases JQ.
func TestLemma2MonotoneQualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(7) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.49*rng.Float64()
		}
		alpha := rng.Float64()
		base, err := ExactBV(pool(qs...), alpha)
		if err != nil {
			return false
		}
		i := rng.Intn(size)
		raised := append([]float64(nil), qs...)
		raised[i] = qs[i] + (0.999-qs[i])*rng.Float64()
		higher, err := ExactBV(pool(raised...), alpha)
		if err != nil {
			return false
		}
		return higher >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 3: a prior α is equivalent to a pseudo-worker of quality α.
func TestTheorem3PriorPseudoWorkerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(7) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		alpha := rng.Float64()
		p := pool(qs...)
		direct, err := ExactBV(p, alpha)
		if err != nil {
			return false
		}
		viaPseudo, err := ExactBV(WithPrior(p, alpha), 0.5)
		if err != nil {
			return false
		}
		return math.Abs(direct-viaPseudo) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWithPriorUniformIsNoop(t *testing.T) {
	p := pool(0.7, 0.8)
	got := WithPrior(p, 0.5)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2 (no pseudo-worker at α=0.5)", len(got))
	}
	got[0].Quality = 0.1
	if p[0].Quality != 0.7 {
		t.Fatal("WithPrior(0.5) aliases the input pool")
	}
}

func TestWithPriorAppendsZeroCostWorker(t *testing.T) {
	p := pool(0.7)
	got := WithPrior(p, 0.8)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	pseudo := got[1]
	if pseudo.Quality != 0.8 || pseudo.Cost != 0 || pseudo.ID != "prior" {
		t.Fatalf("pseudo-worker = %v", pseudo)
	}
}

// JQ under BV is invariant under the q → 1−q reinterpretation.
func TestNormalizeInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(7) + 1
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = rng.Float64()
		}
		p := pool(qs...)
		direct, err := ExactBV(p, 0.5)
		if err != nil {
			return false
		}
		normalized, _ := p.Normalize()
		viaNorm, err := ExactBV(normalized, 0.5)
		if err != nil {
			return false
		}
		return math.Abs(direct-viaNorm) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	p := figure2Pool()
	rng := rand.New(rand.NewSource(42))
	got, err := MonteCarlo(p, voting.Bayesian{}, 0.5, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.01 {
		t.Fatalf("Monte Carlo JQ = %v, want ~0.90", got)
	}
	gotMV, err := MonteCarlo(p, voting.Majority{}, 0.5, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotMV-0.792) > 0.01 {
		t.Fatalf("Monte Carlo JQ(MV) = %v, want ~0.792", gotMV)
	}
}

func TestMonteCarloHandlesRandomizedStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	got, err := MonteCarlo(pool(0.8, 0.7, 0.6), voting.RandomBallot{}, 0.5, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("Monte Carlo JQ(RBV) = %v, want ~0.5", got)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(pool(0.7), voting.Bayesian{}, 0.5, 0, rng); !errors.Is(err, ErrNoTrials) {
		t.Fatalf("zero trials: err = %v", err)
	}
}

func TestMonteCarloRespectsPrior(t *testing.T) {
	// With α=0.9 and weak workers, BV should lean heavily on the prior.
	rng := rand.New(rand.NewSource(44))
	got, err := MonteCarlo(pool(0.55), voting.Bayesian{}, 0.9, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactBV(pool(0.55), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 0.01 {
		t.Fatalf("Monte Carlo %v vs exact %v", got, exact)
	}
}
