// Package jq computes the Jury Quality (JQ) of Zheng et al. (EDBT 2015):
// the probability that a voting strategy aggregates a jury's votes into the
// task's true answer (Definition 3).
//
// The package provides:
//
//   - Exact: generic O(2^n) evaluation of Definition 3 for any strategy;
//   - ExactBV: the fast-path exact JQ for Bayesian Voting,
//     JQ = Σ_V max(α·P(V|t=0), (1−α)·P(V|t=1));
//   - closed forms for MV (Poisson-binomial DP), Half, RMV and RBV;
//   - MonteCarlo: simulation-based JQ for very large juries;
//   - Estimate: the paper's bucket-based polynomial-time approximation of
//     JQ under BV (Algorithm 1) with the pruning of Algorithm 2, plus its
//     analytic additive error bound (Section 4.4);
//   - WithPrior: the Theorem 3 reduction of a general prior α to a uniform
//     prior via a pseudo-worker of quality α.
//
// Computing JQ under BV exactly is NP-hard (Theorem 2), so Exact/ExactBV
// refuse juries beyond MaxExactJurySize.
package jq

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/voting"
	"repro/internal/worker"
)

// MaxExactJurySize bounds the jury size accepted by the exact, exponential
// JQ computations. 2^24 vote patterns is the largest enumeration that stays
// interactive on commodity hardware.
const MaxExactJurySize = 24

// Errors returned by the computations in this package.
var (
	ErrJuryTooLarge = errors.New("jq: jury too large for exact computation")
	ErrPriorRange   = errors.New("jq: prior outside [0, 1]")
	ErrNoTrials     = errors.New("jq: Monte Carlo needs at least one trial")
)

func checkPrior(alpha float64) error {
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return fmt.Errorf("%w: %v", ErrPriorRange, alpha)
	}
	return nil
}

// Exact evaluates Definition 3 directly:
//
//	JQ(J, S, α) = Σ_V [ α·P(V|t=0)·h(V) + (1−α)·P(V|t=1)·(1−h(V)) ]
//
// where h(V) = P(S returns 0 on V). It enumerates all 2^n votings and works
// for every Strategy, deterministic or randomized. The jury must not exceed
// MaxExactJurySize workers.
func Exact(pool worker.Pool, s voting.Strategy, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	n := len(pool)
	if n > MaxExactJurySize {
		return 0, fmt.Errorf("%w: n=%d > %d", ErrJuryTooLarge, n, MaxExactJurySize)
	}
	qs := pool.Qualities()
	votes := make([]voting.Vote, n)
	var jq float64
	for mask := 0; mask < 1<<uint(n); mask++ {
		p0, p1 := 1.0, 1.0 // P(V | t=0), P(V | t=1)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				votes[i] = voting.No
				p0 *= qs[i]
				p1 *= 1 - qs[i]
			} else {
				votes[i] = voting.Yes
				p0 *= 1 - qs[i]
				p1 *= qs[i]
			}
		}
		h, err := s.ProbZero(votes, qs, alpha)
		if err != nil {
			return 0, fmt.Errorf("jq: strategy %s: %w", s.Name(), err)
		}
		jq += alpha*p0*h + (1-alpha)*p1*(1-h)
	}
	return jq, nil
}

// ExactBV computes the exact JQ of Bayesian Voting,
// JQ(J, BV, α) = Σ_V max(α·P(V|t=0), (1−α)·P(V|t=1)), by direct enumeration.
// It is the reference the approximation algorithm is validated against.
// The jury must not exceed MaxExactJurySize workers.
func ExactBV(pool worker.Pool, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	n := len(pool)
	if n > MaxExactJurySize {
		return 0, fmt.Errorf("%w: n=%d > %d", ErrJuryTooLarge, n, MaxExactJurySize)
	}
	return exactBVOf(pool.Qualities(), alpha), nil
}

// exactBVOf is the enumeration core of ExactBV, shared with the
// ExactBVEvaluator fast path so both produce bit-identical results.
func exactBVOf(qs []float64, alpha float64) float64 {
	n := len(qs)
	var jq float64
	for mask := 0; mask < 1<<uint(n); mask++ {
		p0, p1 := alpha, 1-alpha
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				p0 *= qs[i]
				p1 *= 1 - qs[i]
			} else {
				p0 *= 1 - qs[i]
				p1 *= qs[i]
			}
		}
		if p0 >= p1 {
			jq += p0
		} else {
			jq += p1
		}
	}
	return jq
}

// correctCountDistribution returns dp where dp[k] = P(exactly k of the
// workers vote for the true answer) — the Poisson-binomial distribution of
// the qualities. O(n²) time, O(n) space.
func correctCountDistribution(qs []float64) []float64 {
	dp := make([]float64, len(qs)+1)
	dp[0] = 1
	for i, q := range qs {
		for k := i + 1; k >= 1; k-- {
			dp[k] = dp[k]*(1-q) + dp[k-1]*q
		}
		dp[0] *= 1 - q
	}
	return dp
}

// MajorityClosedForm computes JQ(J, MV, α) in O(n²) via the
// Poisson-binomial distribution of the number of correct votes, replacing
// the exponential enumeration. MV answers 0 iff Σ(1−v_i) ≥ (n+1)/2, so:
//
//   - given t=0 the result is correct iff #correct ≥ ⌈(n+1)/2⌉;
//   - given t=1 the result is correct iff #correct ≥ ⌈n/2⌉ (the even-n tie
//     resolves to answer 1, which is correct in this branch).
//
// This matches the O(n log n) computation referenced from Cao et al. [7] up
// to the DP's complexity; the value is identical.
func MajorityClosedForm(pool worker.Pool, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	n := len(pool)
	dp := correctCountDistribution(pool.Qualities())
	var pCorrect0, pCorrect1 float64
	for k := 0; k <= n; k++ {
		if 2*k >= n+1 {
			pCorrect0 += dp[k]
		}
		if 2*k >= n {
			pCorrect1 += dp[k]
		}
	}
	return alpha*pCorrect0 + (1-alpha)*pCorrect1, nil
}

// HalfClosedForm computes JQ(J, HALF, α) in O(n²). Half voting answers 0 on
// even-n ties, mirroring MajorityClosedForm with the branches swapped.
func HalfClosedForm(pool worker.Pool, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	n := len(pool)
	dp := correctCountDistribution(pool.Qualities())
	var pCorrect0, pCorrect1 float64
	for k := 0; k <= n; k++ {
		if 2*k >= n {
			pCorrect0 += dp[k]
		}
		if 2*k >= n+1 {
			pCorrect1 += dp[k]
		}
	}
	return alpha*pCorrect0 + (1-alpha)*pCorrect1, nil
}

// RandomizedMajorityClosedForm computes JQ(J, RMV, α), which reduces to the
// mean worker quality: conditioned on either truth value, the probability
// that RMV picks the true answer equals the expected fraction of correct
// votes, E[#correct]/n = mean(q_i), independent of α.
func RandomizedMajorityClosedForm(pool worker.Pool, alpha float64) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	return pool.MeanQuality(), nil
}

// RandomBallotClosedForm is the JQ of Random Ballot Voting: always 1/2.
func RandomBallotClosedForm() float64 { return 0.5 }

// MonteCarlo estimates JQ(J, S, α) by simulation: draw the truth from the
// prior, draw each worker's vote from their quality, run the strategy, and
// count correct outcomes. Unlike the exact computations it scales to any
// jury size; the standard error is about 0.5/sqrt(trials).
func MonteCarlo(pool worker.Pool, s voting.Strategy, alpha float64, trials int, rng *rand.Rand) (float64, error) {
	if err := pool.Validate(); err != nil {
		return 0, err
	}
	if err := checkPrior(alpha); err != nil {
		return 0, err
	}
	if trials < 1 {
		return 0, ErrNoTrials
	}
	qs := pool.Qualities()
	votes := make([]voting.Vote, len(pool))
	correct := 0
	for trial := 0; trial < trials; trial++ {
		truth := voting.Yes
		if rng.Float64() < alpha {
			truth = voting.No
		}
		for i, q := range qs {
			if rng.Float64() < q {
				votes[i] = truth
			} else {
				votes[i] = truth.Opposite()
			}
		}
		result, err := voting.Decide(s, votes, qs, alpha, rng)
		if err != nil {
			return 0, fmt.Errorf("jq: strategy %s: %w", s.Name(), err)
		}
		if result == truth {
			correct++
		}
	}
	return float64(correct) / float64(trials), nil
}

// WithPrior implements Theorem 3: JQ(J, BV, α) = JQ(J ∪ {pseudo}, BV, 0.5)
// where the pseudo-worker has quality α and zero cost. For α = 0.5 the pool
// is returned unchanged (a q=0.5 worker carries no information, but keeping
// the jury size minimal is cheaper).
func WithPrior(pool worker.Pool, alpha float64) worker.Pool {
	if alpha == 0.5 {
		return pool.Clone()
	}
	out := make(worker.Pool, len(pool)+1)
	copy(out, pool)
	out[len(pool)] = worker.Worker{ID: "prior", Quality: alpha, Cost: 0}
	return out
}
