package jq

import (
	"testing"

	"repro/internal/voting"
	"repro/internal/worker"
)

// FuzzEstimateBounds drives arbitrary byte strings into jury
// configurations and checks the approximation invariants of Section 4.4:
// the estimate never exceeds the exact JQ and the gap respects the
// analytic bound. Run with `go test -fuzz FuzzEstimateBounds ./internal/jq`
// for exploration; the seed corpus runs on every `go test`.
func FuzzEstimateBounds(f *testing.F) {
	f.Add([]byte{128, 150, 200}, byte(128), uint16(50))
	f.Add([]byte{255, 0, 128, 64, 192}, byte(0), uint16(10))
	f.Add([]byte{130, 131, 132, 133, 134, 135, 136, 137}, byte(255), uint16(400))
	f.Add([]byte{128}, byte(127), uint16(1))
	f.Fuzz(func(t *testing.T, qualityBytes []byte, alphaByte byte, bucketsRaw uint16) {
		if len(qualityBytes) == 0 || len(qualityBytes) > 14 {
			t.Skip()
		}
		qs := make([]float64, len(qualityBytes))
		for i, b := range qualityBytes {
			qs[i] = float64(b) / 255 // [0, 1]
		}
		alpha := float64(alphaByte) / 255
		buckets := int(bucketsRaw%2000) + 1
		pool := worker.UniformCost(qs, 1)

		exact, err := ExactBV(pool, alpha)
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		res, err := Estimate(pool, alpha, Options{NumBuckets: buckets})
		if err != nil {
			t.Fatalf("estimate: %v", err)
		}
		if res.JQ < 0.5-1e-9 || res.JQ > 1+1e-9 {
			t.Fatalf("estimate %v outside [0.5, 1]", res.JQ)
		}
		if res.JQ > exact+1e-9 {
			t.Fatalf("estimate %v exceeds exact %v (qs=%v alpha=%v buckets=%d)",
				res.JQ, exact, qs, alpha, buckets)
		}
		if !res.ShortCircuited && exact-res.JQ > res.Bound+1e-9 {
			t.Fatalf("gap %v exceeds bound %v (qs=%v alpha=%v buckets=%d)",
				exact-res.JQ, res.Bound, qs, alpha, buckets)
		}
		// Pruning must be behaviour-preserving on every input.
		noPrune, err := Estimate(pool, alpha, Options{NumBuckets: buckets, DisablePruning: true})
		if err != nil {
			t.Fatalf("estimate (no pruning): %v", err)
		}
		if diff := res.JQ - noPrune.JQ; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pruning changed the estimate: %v vs %v", res.JQ, noPrune.JQ)
		}
	})
}

// FuzzExactConsistency checks that the generic Definition 3 evaluator and
// the BV fast path agree on arbitrary juries and priors.
func FuzzExactConsistency(f *testing.F) {
	f.Add([]byte{200, 150, 150}, byte(128))
	f.Add([]byte{10, 240}, byte(64))
	f.Fuzz(func(t *testing.T, qualityBytes []byte, alphaByte byte) {
		if len(qualityBytes) == 0 || len(qualityBytes) > 10 {
			t.Skip()
		}
		qs := make([]float64, len(qualityBytes))
		for i, b := range qualityBytes {
			qs[i] = float64(b) / 255
		}
		alpha := float64(alphaByte) / 255
		pool := worker.UniformCost(qs, 1)
		fast, err := ExactBV(pool, alpha)
		if err != nil {
			t.Fatal(err)
		}
		generic, err := Exact(pool, voting.Bayesian{}, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if diff := fast - generic; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("fast %v != generic %v (qs=%v alpha=%v)", fast, generic, qs, alpha)
		}
	})
}
