package jq

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/worker"
)

func TestExactIterativeMatchesEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.02 + 0.96*rng.Float64()
		}
		alpha := 0.02 + 0.96*rng.Float64()
		pool := worker.UniformCost(qs, 1)
		want, err := ExactBV(pool, alpha)
		if err != nil {
			return false
		}
		got, err := ExactIterative(pool, alpha)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestExactIterativeFigure2(t *testing.T) {
	got, err := ExactIterative(worker.UniformCost([]float64{0.9, 0.6, 0.6}, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("JQ = %v, want 0.90", got)
	}
}

func TestExactIterativeHomogeneousLargeJury(t *testing.T) {
	// 201 identical workers: only 202 evidence states, exact at a size
	// hopeless for the 2^n enumeration. For odd homogeneous juries BV
	// equals MV, so the binomial closed form is the reference.
	const n = 201
	const q = 0.55
	pool := homogeneous(n, q)
	if states := DistinctEvidenceStates(pool); states != n+1 {
		t.Fatalf("DistinctEvidenceStates = %d, want %d", states, n+1)
	}
	got, err := ExactIterative(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MajorityClosedForm(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("iterative %v != binomial closed form %v", got, want)
	}
}

func TestExactIterativeTwoLevelJury(t *testing.T) {
	// 30 workers from two quality levels: states ≤ 16·16 = 256.
	qs := make([]float64, 30)
	for i := range qs {
		if i%2 == 0 {
			qs[i] = 0.7
		} else {
			qs[i] = 0.8
		}
	}
	pool := worker.UniformCost(qs, 1)
	if states := DistinctEvidenceStates(pool); states > 256 {
		t.Fatalf("DistinctEvidenceStates = %d, want ≤ 256", states)
	}
	got, err := ExactIterative(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the bucket estimate with its bound.
	est, err := Estimate(pool, 0.5, Options{NumBuckets: 200 * len(pool)})
	if err != nil {
		t.Fatal(err)
	}
	if got < est.JQ-1e-9 {
		t.Fatalf("exact %v below lower-bound estimate %v", got, est.JQ)
	}
	if got-est.JQ > est.Bound+1e-9 {
		t.Fatalf("exact %v exceeds estimate %v + bound %v", got, est.JQ, est.Bound)
	}
}

func TestExactIterativeDegenerateQuality(t *testing.T) {
	if _, err := ExactIterative(worker.UniformCost([]float64{1, 0.7}, 1), 0.5); !errors.Is(err, ErrDegenerateQuality) {
		t.Fatalf("q=1: err = %v", err)
	}
	if _, err := ExactIterative(worker.UniformCost([]float64{0, 0.7}, 1), 0.5); !errors.Is(err, ErrDegenerateQuality) {
		t.Fatalf("q=0: err = %v", err)
	}
}

func TestExactIterativeExtremePriors(t *testing.T) {
	pool := worker.UniformCost([]float64{0.7, 0.8}, 1)
	for _, alpha := range []float64{0, 1} {
		got, err := ExactIterative(pool, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("alpha=%v: JQ = %v, want 1", alpha, got)
		}
	}
}

func TestExactIterativeValidation(t *testing.T) {
	if _, err := ExactIterative(nil, 0.5); !errors.Is(err, worker.ErrEmptyPool) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := ExactIterative(worker.UniformCost([]float64{0.7}, 1), 1.2); !errors.Is(err, ErrPriorRange) {
		t.Fatalf("prior: err = %v", err)
	}
}

func TestDistinctEvidenceStatesDegenerate(t *testing.T) {
	if got := DistinctEvidenceStates(worker.UniformCost([]float64{1}, 1)); got != MaxIterativeStates+1 {
		t.Fatalf("q=1 probe = %d, want budget-exceeded sentinel", got)
	}
}

// Agreement with the Theorem 3 prior reduction.
func TestExactIterativePriorReductionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.05 + 0.9*rng.Float64()
		}
		alpha := 0.05 + 0.9*rng.Float64()
		pool := worker.UniformCost(qs, 1)
		direct, err := ExactIterative(pool, alpha)
		if err != nil {
			return false
		}
		viaPseudo, err := ExactIterative(WithPrior(pool, alpha), 0.5)
		if err != nil {
			return false
		}
		return math.Abs(direct-viaPseudo) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
