package jq

import (
	"fmt"
	"slices"

	"repro/internal/worker"
)

// MVStats reports the incremental work an MVEvaluator has performed.
type MVStats struct {
	// Evals counts Eval calls.
	Evals int
	// Appended counts single-worker O(n) DP extensions; a fully
	// incremental workload (add/swap/remove of one worker per Eval, as
	// the annealing search produces) keeps Appended close to Evals.
	Appended int
	// Rollbacks counts evaluations that had to rewind the snapshot stack
	// because a worker left the jury.
	Rollbacks int
}

// MVEvaluator evaluates JQ(J, MV, α) for arbitrary subsets of a fixed
// candidate pool with O(n)-update delta evaluation of the
// Poisson-binomial dynamic program.
//
// The evaluator keeps the current jury in canonical (ascending index)
// order together with a stack of DP snapshots, one per prefix: snapshot
// j is the correct-vote-count distribution over the first j members.
// Adding a worker at the end extends the DP by one O(n) row; removing a
// worker rolls back to the snapshot before its position and re-applies
// the survivors — the same multiply-accumulate sequence a from-scratch
// forward DP would run, which keeps every result bit-identical to
// MajorityClosedForm on the canonical subset. Consecutive juries that
// differ by one add/swap/remove (the annealing workload) therefore cost
// O(n·distance-from-divergence) instead of a fresh O(n²) DP, with zero
// allocation in steady state.
//
// Not safe for concurrent use.
type MVEvaluator struct {
	alpha   float64
	qs      []float64
	members []int
	// dps[j] is the Poisson-binomial DP over members[:j] (len j+1).
	// Slices are allocated once per depth and overwritten on reuse.
	dps   [][]float64
	idx   []int
	stats MVStats
}

// NewMVEvaluator validates the pool and prior once.
func NewMVEvaluator(pool worker.Pool, alpha float64) (*MVEvaluator, error) {
	if err := pool.Validate(); err != nil {
		return nil, err
	}
	if err := checkPrior(alpha); err != nil {
		return nil, err
	}
	return &MVEvaluator{
		alpha: alpha,
		qs:    pool.Qualities(),
		dps:   [][]float64{{1}}, // DP over the empty jury
	}, nil
}

// Stats returns the delta-evaluation counters.
func (e *MVEvaluator) Stats() MVStats { return e.stats }

// Eval returns JQ(J, MV, α) of the jury given by candidate-pool indices
// (any order, duplicates allowed). The result is bit-identical to
// MajorityClosedForm(pool.Subset(sortedIndices), alpha). An empty subset
// returns worker.ErrEmptyPool, matching the direct computation.
func (e *MVEvaluator) Eval(indices []int) (float64, error) {
	if len(indices) == 0 {
		return 0, worker.ErrEmptyPool
	}
	e.idx = append(e.idx[:0], indices...)
	slices.Sort(e.idx)
	if e.idx[0] < 0 || e.idx[len(e.idx)-1] >= len(e.qs) {
		return 0, fmt.Errorf("%w: n=%d, indices %v", ErrIndexRange, len(e.qs), e.idx)
	}
	e.stats.Evals++

	// Keep the longest common prefix of the current jury, rewind past
	// the first divergence, and extend with the remaining members.
	lcp := 0
	for lcp < len(e.members) && lcp < len(e.idx) && e.members[lcp] == e.idx[lcp] {
		lcp++
	}
	if lcp < len(e.members) {
		e.stats.Rollbacks++
		e.members = e.members[:lcp]
	}
	for _, i := range e.idx[lcp:] {
		e.push(e.qs[i])
		e.members = append(e.members, i)
	}

	// Tail evaluation, mirroring MajorityClosedForm expression for
	// expression so the float result is identical.
	n := len(e.members)
	dp := e.dps[n]
	var pCorrect0, pCorrect1 float64
	for k := 0; k <= n; k++ {
		if 2*k >= n+1 {
			pCorrect0 += dp[k]
		}
		if 2*k >= n {
			pCorrect1 += dp[k]
		}
	}
	return e.alpha*pCorrect0 + (1-e.alpha)*pCorrect1, nil
}

// push extends the DP stack by one worker of quality q. The recurrence
// matches correctCountDistribution slot for slot: the in-place descending
// update there reads only pre-update values, which is exactly the
// prev-snapshot read here, and its dp[i+1] slot holds zero before the
// update, so 0·(1−q) + dp[i]·q reduces to the dp[i]·q written here.
func (e *MVEvaluator) push(q float64) {
	j := len(e.members)
	prev := e.dps[j]
	if len(e.dps) == j+1 {
		e.dps = append(e.dps, make([]float64, j+2))
	}
	next := e.dps[j+1]
	next[0] = prev[0] * (1 - q)
	for k := 1; k <= j; k++ {
		next[k] = prev[k]*(1-q) + prev[k-1]*q
	}
	next[j+1] = prev[j] * q
	e.stats.Appended++
}
