package jq

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/worker"
)

// DefaultMemoLimit caps the Estimator's memo table. At ~80 bytes per
// entry the default bounds the table near 10 MB, far beyond what one
// annealing run visits, while keeping a runaway caller from exhausting
// memory.
const DefaultMemoLimit = 1 << 17

// ErrIndexRange is returned when a subset refers to a worker outside the
// evaluator's candidate pool.
var ErrIndexRange = fmt.Errorf("jq: subset index outside candidate pool")

// EstimatorStats reports the work an Estimator has performed, alongside
// the per-call KeysVisited/KeysPruned counters carried by Result.
type EstimatorStats struct {
	// Evals counts Eval/EvalBits calls.
	Evals int
	// Hits counts evaluations answered from the memo table.
	Hits int
	// Misses counts evaluations that ran the bucket DP (or a
	// short-circuit).
	Misses int
	// MemoEntries is the current memo table size.
	MemoEntries int
}

// Estimator is the incremental evaluation engine for the Algorithm 1
// bucket approximation of JQ(J, BV, α): it is constructed once per
// (candidate pool, prior, options) and then evaluates arbitrary subsets
// of the pool without re-validating, re-normalizing, or recomputing
// log-odds, and without per-call allocation. Results are bit-identical
// to the one-shot Estimate on the same subset: both run the shared
// bucketDP core on identically assembled inputs.
//
// Eval sorts the indices into canonical ascending order before
// evaluating, so the result (and the memo key) is independent of the
// order the search produced the jury in; a duplicated index counts as
// two jury members, exactly as Pool.Subset would materialize it. Juries
// revisited during a search — ubiquitous under simulated annealing —
// are answered from a memo table keyed on the canonical signature.
//
// An Estimator is NOT safe for concurrent use: it owns scratch buffers
// and the memo table. Parallel searches must construct one each.
type Estimator struct {
	alpha    float64
	opts     Options
	poolSize int

	// Per-worker precomputation over the normalized pool (Section 3.3:
	// q < 0.5 reinterpreted as 1−q), plus the Theorem 3 pseudo-worker
	// when α ≠ 0.5.
	qs       []float64 // normalized qualities, by pool index
	phis     []float64 // φ(q_i) = ln(q_i/(1−q_i)), by pool index
	hasPrior bool
	priorQ   float64
	priorPhi float64

	// Scratch, reused across evaluations.
	idx       []int
	workers   []bucketedWorker
	aggregate []int
	cur, next []float64
	keyBuf    []byte

	memo      map[string]Result
	memoLimit int
	stats     EstimatorStats
}

// phiOf is the Bayesian log-odds weight of a normalized quality; the
// same expression Estimate applies, so precomputed values are
// bit-identical.
func phiOf(q float64) float64 { return math.Log(q / (1 - q)) }

// NewEstimator validates the candidate pool and prior once and
// precomputes every per-worker quantity the bucket approximation needs.
func NewEstimator(pool worker.Pool, alpha float64, opts Options) (*Estimator, error) {
	if err := pool.Validate(); err != nil {
		return nil, err
	}
	if err := checkPrior(alpha); err != nil {
		return nil, err
	}
	if opts.NumBuckets == 0 {
		opts.NumBuckets = DefaultNumBuckets
	}
	if opts.NumBuckets < 1 {
		return nil, fmt.Errorf("jq: NumBuckets must be positive, got %d", opts.NumBuckets)
	}
	e := &Estimator{
		alpha:    alpha,
		opts:     opts,
		poolSize: len(pool),
		qs:       make([]float64, len(pool)),
		phis:     make([]float64, len(pool)),
	}
	for i, w := range pool {
		q := w.Quality
		if q < 0.5 {
			q = 1 - q
		}
		e.qs[i] = q
		e.phis[i] = phiOf(q)
	}
	if alpha != 0.5 {
		q := alpha
		if q < 0.5 {
			q = 1 - q
		}
		e.hasPrior = true
		e.priorQ = q
		e.priorPhi = phiOf(q)
	}
	if !opts.DisableMemo {
		e.memoLimit = opts.MemoLimit
		if e.memoLimit == 0 {
			e.memoLimit = DefaultMemoLimit
		}
		e.memo = make(map[string]Result)
	}
	return e, nil
}

// Alpha returns the prior the estimator was built for.
func (e *Estimator) Alpha() float64 { return e.alpha }

// Stats returns the evaluation and memoization counters.
func (e *Estimator) Stats() EstimatorStats {
	s := e.stats
	s.MemoEntries = len(e.memo)
	return s
}

// Eval evaluates the jury given by candidate-pool indices (any order,
// duplicates allowed). The result is bit-identical to
//
//	Estimate(pool.Subset(sortedIndices), alpha, opts)
//
// including the KeysVisited/KeysPruned counters. An empty subset returns
// worker.ErrEmptyPool, as Estimate does on an empty jury.
func (e *Estimator) Eval(indices []int) (Result, error) {
	e.idx = append(e.idx[:0], indices...)
	slices.Sort(e.idx)
	return e.evalCanonical()
}

// EvalBits evaluates the jury given as a bitmask over pool indices: bit
// i%64 of word i/64 selects worker i. Bit order is already canonical, so
// no sort is needed.
func (e *Estimator) EvalBits(mask []uint64) (Result, error) {
	e.idx = e.idx[:0]
	for w, word := range mask {
		for word != 0 {
			e.idx = append(e.idx, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return e.evalCanonical()
}

// evalCanonical evaluates e.idx, which must already be sorted ascending.
func (e *Estimator) evalCanonical() (Result, error) {
	if len(e.idx) == 0 {
		return Result{}, worker.ErrEmptyPool
	}
	if e.idx[0] < 0 || e.idx[len(e.idx)-1] >= e.poolSize {
		return Result{}, fmt.Errorf("%w: n=%d, indices %v", ErrIndexRange, e.poolSize, e.idx)
	}
	e.stats.Evals++
	if e.memo != nil {
		e.signature()
		if res, ok := e.memo[string(e.keyBuf)]; ok {
			e.stats.Hits++
			return res, nil
		}
	}
	e.stats.Misses++
	res := e.evalSubset()
	if e.memo != nil && len(e.memo) < e.memoLimit {
		e.memo[string(e.keyBuf)] = res
	}
	return res, nil
}

// signature encodes the canonical subset into keyBuf as varint deltas.
func (e *Estimator) signature() {
	b := e.keyBuf[:0]
	prev := 0
	for _, i := range e.idx {
		b = binary.AppendUvarint(b, uint64(i-prev))
		prev = i
	}
	e.keyBuf = b
}

// evalSubset mirrors Estimate step for step on the precomputed data.
func (e *Estimator) evalSubset() Result {
	n := len(e.idx)
	if e.hasPrior {
		n++
	}

	// High-quality short-circuit (Section 4.4).
	maxQ := 0.0
	for _, i := range e.idx {
		if e.qs[i] > maxQ {
			maxQ = e.qs[i]
		}
	}
	if e.hasPrior && e.priorQ > maxQ {
		maxQ = e.priorQ
	}
	if maxQ > HighQualityCutoff {
		return Result{JQ: maxQ, Bound: 1 - maxQ, ShortCircuited: true}
	}

	// upper = max φ; all-q=0.5 juries have upper = 0 and JQ exactly 0.5.
	upper := 0.0
	for _, i := range e.idx {
		if e.phis[i] > upper {
			upper = e.phis[i]
		}
	}
	if e.hasPrior && e.priorPhi > upper {
		upper = e.priorPhi
	}
	if upper == 0 {
		return Result{JQ: 0.5, ShortCircuited: true}
	}

	// Bucketize into scratch, subset order then the pseudo-worker — the
	// same assembly order Estimate sees after WithPrior.
	delta := upper / float64(e.opts.NumBuckets)
	if cap(e.workers) < n {
		e.workers = make([]bucketedWorker, 0, 2*n)
	}
	ws := e.workers[:0]
	span := 0
	for _, i := range e.idx {
		b := bucketOf(e.phis[i], delta)
		ws = append(ws, bucketedWorker{b: b, q: e.qs[i]})
		span += b
	}
	if e.hasPrior {
		b := bucketOf(e.priorPhi, delta)
		ws = append(ws, bucketedWorker{b: b, q: e.priorQ})
		span += b
	}
	if cap(e.aggregate) < n+1 {
		e.aggregate = make([]int, n+1)
	}
	// The DP buffers must be all-zero; bucketDP re-zeroes every slot it
	// consumes, so only growth requires a fresh (zeroed) allocation.
	if need := 2*span + 1; cap(e.cur) < need {
		e.cur = make([]float64, need)
		e.next = make([]float64, need)
	}
	res := Result{Bound: ErrorBound(n, upper, e.opts.NumBuckets)}
	span2 := 2*span + 1
	bucketDP(ws, e.aggregate[:n+1], e.cur[:span2], e.next[:span2], e.opts.DisablePruning, &res)
	return res
}

// ExactBVEvaluator is the subset-evaluation fast path of ExactBV: the
// pool's qualities are captured once, and each evaluation enumerates the
// 2^n vote patterns of the subset directly from them, with no per-call
// allocation. Results are bit-identical to ExactBV on the canonical
// (ascending-index) subset. Not safe for concurrent use.
type ExactBVEvaluator struct {
	alpha float64
	qs    []float64
	idx   []int
	sub   []float64
}

// NewExactBVEvaluator validates the pool and prior once.
func NewExactBVEvaluator(pool worker.Pool, alpha float64) (*ExactBVEvaluator, error) {
	if err := pool.Validate(); err != nil {
		return nil, err
	}
	if err := checkPrior(alpha); err != nil {
		return nil, err
	}
	return &ExactBVEvaluator{alpha: alpha, qs: pool.Qualities()}, nil
}

// Eval returns the exact JQ under Bayesian Voting of the subset, which
// must not exceed MaxExactJurySize workers.
func (e *ExactBVEvaluator) Eval(indices []int) (float64, error) {
	if len(indices) == 0 {
		return 0, worker.ErrEmptyPool
	}
	if len(indices) > MaxExactJurySize {
		return 0, fmt.Errorf("%w: n=%d > %d", ErrJuryTooLarge, len(indices), MaxExactJurySize)
	}
	e.idx = append(e.idx[:0], indices...)
	slices.Sort(e.idx)
	if e.idx[0] < 0 || e.idx[len(e.idx)-1] >= len(e.qs) {
		return 0, fmt.Errorf("%w: n=%d, indices %v", ErrIndexRange, len(e.qs), e.idx)
	}
	e.sub = e.sub[:0]
	for _, i := range e.idx {
		e.sub = append(e.sub, e.qs[i])
	}
	return exactBVOf(e.sub, e.alpha), nil
}
