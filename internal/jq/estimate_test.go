package jq

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/worker"
)

func TestEstimateMatchesExactOnFigure2(t *testing.T) {
	res, err := Estimate(figure2Pool(), 0.5, Options{NumBuckets: 2200}) // d=200·n... n=3
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-0.9) > 1e-3 {
		t.Fatalf("estimated JQ = %v, want ≈0.90", res.JQ)
	}
	if res.ShortCircuited {
		t.Fatal("unexpected short circuit")
	}
}

func TestEstimateDefaultsBuckets(t *testing.T) {
	res, err := Estimate(figure2Pool(), 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-0.9) > 5e-3 {
		t.Fatalf("estimated JQ with default buckets = %v, want ≈0.90", res.JQ)
	}
}

func TestEstimateRejectsNegativeBuckets(t *testing.T) {
	if _, err := Estimate(figure2Pool(), 0.5, Options{NumBuckets: -3}); err == nil {
		t.Fatal("no error for negative NumBuckets")
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(nil, 0.5, Options{}); !errors.Is(err, worker.ErrEmptyPool) {
		t.Errorf("empty pool: err = %v", err)
	}
	if _, err := Estimate(pool(0.7), -0.1, Options{}); !errors.Is(err, ErrPriorRange) {
		t.Errorf("bad prior: err = %v", err)
	}
}

func TestEstimateShortCircuitsHighQuality(t *testing.T) {
	res, err := Estimate(pool(0.995, 0.6, 0.7), 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShortCircuited {
		t.Fatal("expected short circuit for q=0.995")
	}
	if res.JQ != 0.995 {
		t.Fatalf("JQ = %v, want 0.995 (the dominating quality)", res.JQ)
	}
	if res.Bound > 0.01 {
		t.Fatalf("Bound = %v, want < 1%%", res.Bound)
	}
	// Exact JQ must dominate the short-circuit value (Lemma 1).
	exact, err := ExactBV(pool(0.995, 0.6, 0.7), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if exact < res.JQ {
		t.Fatalf("exact %v < estimate %v", exact, res.JQ)
	}
}

func TestEstimateShortCircuitsExtremePrior(t *testing.T) {
	// α=1 introduces a pseudo-worker of quality 1 → short circuit at JQ=1.
	res, err := Estimate(pool(0.6, 0.7), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShortCircuited || res.JQ != 1 {
		t.Fatalf("α=1: res = %+v, want short-circuited JQ=1", res)
	}
	// α=0 likewise: pseudo-worker q=0 normalizes to q=1.
	res, err = Estimate(pool(0.6, 0.7), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShortCircuited || res.JQ != 1 {
		t.Fatalf("α=0: res = %+v, want short-circuited JQ=1", res)
	}
}

func TestEstimateAllCoinFlipWorkers(t *testing.T) {
	res, err := Estimate(pool(0.5, 0.5, 0.5), 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.JQ != 0.5 || !res.ShortCircuited {
		t.Fatalf("res = %+v, want short-circuited JQ=0.5", res)
	}
}

func TestEstimateSingleWorker(t *testing.T) {
	res, err := Estimate(pool(0.8), 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-0.8) > 1e-9 {
		t.Fatalf("JQ = %v, want 0.8", res.JQ)
	}
}

func TestEstimateLowQualityWorkersReinterpreted(t *testing.T) {
	// q=0.2 carries as much information as q=0.8.
	a, err := Estimate(pool(0.2, 0.7), 0.5, Options{NumBuckets: 400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(pool(0.8, 0.7), 0.5, Options{NumBuckets: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.JQ-b.JQ) > 1e-12 {
		t.Fatalf("JQ(0.2) = %v != JQ(0.8) = %v", a.JQ, b.JQ)
	}
}

// The central approximation guarantees of Section 4.4: the estimate is a
// lower bound on the true JQ, and the gap stays below the analytic bound.
func TestEstimateErrorBoundProperty(t *testing.T) {
	f := func(seed int64, nbRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(10) + 2
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.49*rng.Float64() // stay below the 0.99 cutoff
		}
		numBuckets := int(nbRaw%200) + 10
		alpha := rng.Float64()
		p := pool(qs...)
		exact, err := ExactBV(p, alpha)
		if err != nil {
			return false
		}
		res, err := Estimate(p, alpha, Options{NumBuckets: numBuckets})
		if err != nil {
			return false
		}
		if res.JQ > exact+1e-9 { // one-sided: ĴQ ≤ JQ
			return false
		}
		return exact-res.JQ <= res.Bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The paper's headline guarantee: numBuckets = 200·n ⇒ error < 1% (in fact
// < 0.627%).
func TestEstimateSubPercentAt200BucketsPerWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		size := rng.Intn(9) + 2
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.49*rng.Float64()
		}
		p := pool(qs...)
		exact, err := ExactBV(p, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Estimate(p, 0.5, Options{NumBuckets: 200 * size})
		if err != nil {
			t.Fatal(err)
		}
		if gap := exact - res.JQ; gap > 0.00627 {
			t.Fatalf("gap = %v > 0.627%% (n=%d, qs=%v)", gap, size, qs)
		}
		if res.Bound > 0.00627+1e-9 {
			t.Fatalf("analytic bound = %v > 0.627%%", res.Bound)
		}
	}
}

// Pruning must not change the estimate, only the work counters.
func TestPruningPreservesEstimateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(12) + 2
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.49*rng.Float64()
		}
		p := pool(qs...)
		withP, err := Estimate(p, 0.5, Options{NumBuckets: 50})
		if err != nil {
			return false
		}
		withoutP, err := Estimate(p, 0.5, Options{NumBuckets: 50, DisablePruning: true})
		if err != nil {
			return false
		}
		if math.Abs(withP.JQ-withoutP.JQ) > 1e-9 {
			return false
		}
		if withoutP.KeysPruned != 0 {
			return false
		}
		return withP.KeysVisited <= withoutP.KeysVisited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPruningSavesWorkOnLargeJuries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	qs := make([]float64, 60)
	for i := range qs {
		qs[i] = 0.5 + 0.49*rng.Float64()
	}
	p := pool(qs...)
	withP, err := Estimate(p, 0.5, Options{NumBuckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	withoutP, err := Estimate(p, 0.5, Options{NumBuckets: 50, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if withP.KeysPruned == 0 {
		t.Fatal("expected pruning to fire on a 60-worker jury")
	}
	if withP.KeysVisited >= withoutP.KeysVisited {
		t.Fatalf("pruned run visited %d keys, unpruned %d — no savings",
			withP.KeysVisited, withoutP.KeysVisited)
	}
	if math.Abs(withP.JQ-withoutP.JQ) > 1e-9 {
		t.Fatalf("pruning changed the estimate: %v vs %v", withP.JQ, withoutP.JQ)
	}
}

func TestEstimateScalesToLargeJuries(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	qs := make([]float64, 300)
	for i := range qs {
		qs[i] = 0.5 + 0.45*rng.Float64()
	}
	res, err := Estimate(pool(qs...), 0.5, Options{NumBuckets: 50})
	if err != nil {
		t.Fatal(err)
	}
	// A 300-strong jury of decent workers is essentially always right.
	if res.JQ < 0.999 || res.JQ > 1+1e-9 {
		t.Fatalf("JQ = %v, want ≈1", res.JQ)
	}
}

// Estimate must agree with the Theorem 3 reduction it uses internally.
func TestEstimatePriorConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(8) + 2
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.45*rng.Float64()
		}
		alpha := 0.05 + 0.9*rng.Float64()
		p := pool(qs...)
		direct, err := Estimate(p, alpha, Options{NumBuckets: 300})
		if err != nil {
			return false
		}
		manual, err := Estimate(WithPrior(p, alpha), 0.5, Options{NumBuckets: 300})
		if err != nil {
			return false
		}
		return math.Abs(direct.JQ-manual.JQ) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity survives the approximation: more buckets ⇒ estimate at least
// as close to exact (checked as non-decreasing error quality on average via
// direct pairwise comparison of gap bounds).
func TestEstimateGapShrinksWithResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var coarseGaps, fineGaps float64
	for trial := 0; trial < 30; trial++ {
		size := rng.Intn(8) + 3
		qs := make([]float64, size)
		for i := range qs {
			qs[i] = 0.5 + 0.49*rng.Float64()
		}
		p := pool(qs...)
		exact, err := ExactBV(p, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := Estimate(p, 0.5, Options{NumBuckets: 10})
		if err != nil {
			t.Fatal(err)
		}
		fine, err := Estimate(p, 0.5, Options{NumBuckets: 400})
		if err != nil {
			t.Fatal(err)
		}
		coarseGaps += exact - coarse.JQ
		fineGaps += exact - fine.JQ
	}
	if fineGaps > coarseGaps {
		t.Fatalf("aggregate gap grew with resolution: coarse %v, fine %v", coarseGaps, fineGaps)
	}
}

func TestErrorBound(t *testing.T) {
	// upper < 5, d = 200 ⇒ bound = e^{5/800} − 1 < 0.627%.
	n := 7
	bound := ErrorBound(n, 5, 200*n)
	if bound >= 0.00627 {
		t.Fatalf("bound = %v, want < 0.627%%", bound)
	}
	if ErrorBound(0, 5, 100) != 0 || ErrorBound(5, 0, 100) != 0 || ErrorBound(5, 5, 0) != 0 {
		t.Fatal("degenerate ErrorBound inputs should yield 0")
	}
	// Bound grows with n at fixed buckets.
	if ErrorBound(10, 5, 100) <= ErrorBound(5, 5, 100) {
		t.Fatal("bound should grow with n")
	}
}

func TestEstimateReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	qs := make([]float64, 40)
	for i := range qs {
		qs[i] = 0.5 + 0.45*rng.Float64()
	}
	p := pool(qs...)
	// Warm the pool.
	if _, err := Estimate(p, 0.5, Options{NumBuckets: 50}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Estimate(p, 0.5, Options{NumBuckets: 50}); err != nil {
			t.Fatal(err)
		}
	})
	// Without pooling this was dominated by two ~4000-element slices; with
	// pooling only small fixed allocations (worker copies, sort) remain.
	if allocs > 15 {
		t.Fatalf("allocations per Estimate = %v, want ≤ 15", allocs)
	}
}
