package multichoice

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/anneal"
)

// SelectionResult is the outcome of multi-choice jury selection.
type SelectionResult struct {
	Jury        Pool
	Indices     []int
	JQ          float64
	Cost        float64
	Evaluations int
}

// Objective scores a candidate multi-choice jury; the prior's maximum is
// used for the empty jury.
type Objective func(jury Pool, prior Prior) (float64, error)

// EstimateObjective returns an Objective backed by EstimateBV.
func EstimateObjective(numBuckets int) Objective {
	return func(jury Pool, prior Prior) (float64, error) {
		return EstimateBV(jury, prior, numBuckets)
	}
}

// ExactObjective is an Objective backed by ExactBV (small juries only).
func ExactObjective(jury Pool, prior Prior) (float64, error) {
	return ExactBV(jury, prior)
}

// SelectAnnealing solves the multi-choice JSP with the same Algorithm 3/4
// annealing as the binary case, treating the JQ computation as a black box
// (Section 7, "Jury Selection Problem Extension").
func SelectAnnealing(pool Pool, budget float64, prior Prior, obj Objective, seed int64) (SelectionResult, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return SelectionResult{}, err
	}
	if budget < 0 || budget != budget {
		return SelectionResult{}, fmt.Errorf("multichoice: negative budget %v", budget)
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(pool)

	priorOnly := 0.0
	for _, p := range prior {
		if p > priorOnly {
			priorOnly = p
		}
	}
	evals := 0
	score := func(members []int) (float64, error) {
		if len(members) == 0 {
			return priorOnly, nil
		}
		evals++
		return obj(pool.Subset(members), prior)
	}

	selected := make([]bool, n)
	var members []int
	var cost float64
	curJQ := priorOnly
	bestJQ, bestMembers, bestCost := curJQ, []int(nil), 0.0

	var loopErr error
	_, err := anneal.Run(anneal.DefaultSchedule(), func(temp float64) {
		if loopErr != nil {
			return
		}
		for step := 0; step < n; step++ {
			r := rng.Intn(n)
			if !selected[r] && cost+pool[r].Cost <= budget {
				selected[r] = true
				members = append(members, r)
				cost += pool[r].Cost
				newJQ, err := score(members)
				if err != nil {
					loopErr = err
					return
				}
				curJQ = newJQ
			} else if len(members) > 0 {
				// Swap a random member against a random non-member.
				var out, in int
				if !selected[r] {
					out, in = members[rng.Intn(len(members))], r
				} else {
					free := n - len(members)
					if free == 0 {
						continue
					}
					pick := rng.Intn(free)
					in = -1
					for i := 0; i < n; i++ {
						if !selected[i] {
							if pick == 0 {
								in = i
								break
							}
							pick--
						}
					}
					out = r
				}
				newCost := cost - pool[out].Cost + pool[in].Cost
				if newCost > budget {
					continue
				}
				candidate := make([]int, 0, len(members))
				for _, m := range members {
					if m != out {
						candidate = append(candidate, m)
					}
				}
				candidate = append(candidate, in)
				newJQ, err := score(candidate)
				if err != nil {
					loopErr = err
					return
				}
				if anneal.Accept(newJQ-curJQ, temp, rng) {
					selected[out] = false
					selected[in] = true
					members = candidate
					cost = newCost
					curJQ = newJQ
				}
			}
			if curJQ > bestJQ {
				bestJQ = curJQ
				bestMembers = append([]int(nil), members...)
				bestCost = cost
			}
		}
	})
	if err != nil {
		return SelectionResult{}, err
	}
	if loopErr != nil {
		return SelectionResult{}, loopErr
	}
	sort.Ints(bestMembers)
	return SelectionResult{
		Jury:        pool.Subset(bestMembers),
		Indices:     bestMembers,
		JQ:          bestJQ,
		Cost:        bestCost,
		Evaluations: evals,
	}, nil
}

// SelectExhaustive enumerates every feasible multi-choice jury; ground
// truth for small pools.
func SelectExhaustive(pool Pool, budget float64, prior Prior, obj Objective) (SelectionResult, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return SelectionResult{}, err
	}
	if budget < 0 || budget != budget {
		return SelectionResult{}, fmt.Errorf("multichoice: negative budget %v", budget)
	}
	n := len(pool)
	if n > 20 {
		return SelectionResult{}, fmt.Errorf("%w: N=%d", ErrJuryTooLarge, n)
	}
	priorOnly := 0.0
	for _, p := range prior {
		if p > priorOnly {
			priorOnly = p
		}
	}
	best := SelectionResult{JQ: priorOnly, Indices: []int{}}
	evals := 0
	for mask := 1; mask < 1<<uint(n); mask++ {
		var cost float64
		var indices []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				cost += pool[i].Cost
				indices = append(indices, i)
			}
		}
		if cost > budget {
			continue
		}
		score, err := obj(pool.Subset(indices), prior)
		if err != nil {
			return SelectionResult{}, err
		}
		evals++
		if score > best.JQ+1e-12 || (score > best.JQ-1e-12 && cost < best.Cost-1e-12) {
			best = SelectionResult{
				Jury:    pool.Subset(indices),
				Indices: indices,
				JQ:      score,
				Cost:    cost,
			}
		}
	}
	best.Evaluations = evals
	return best, nil
}
