package multichoice

import (
	"fmt"
	"math"
	"sort"
)

// MaxExactStates bounds the ℓ^n enumeration of the exact JQ computations.
const MaxExactStates = 1 << 24

// ExactJQ evaluates the generalized Definition 3 (Equation 9) for any
// strategy by enumerating all ℓ^n votings:
//
//	JQ = Σ_V Σ_t prior[t]·P(V|t)·P(S(V) = t).
func ExactJQ(pool Pool, s Strategy, prior Prior) (float64, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return 0, err
	}
	l, n := pool.Labels(), len(pool)
	if err := checkExactSize(l, n); err != nil {
		return 0, err
	}
	votes := make([]Label, n)
	var jq float64
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			probs, err := s.Probabilities(votes, pool, prior)
			if err != nil {
				return err
			}
			for t := 0; t < l; t++ {
				p := prior[t]
				for j, w := range pool {
					p *= w.Confusion[t][votes[j]]
				}
				jq += p * probs[t]
			}
			return nil
		}
		for v := 0; v < l; v++ {
			votes[i] = Label(v)
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return jq, nil
}

// ExactBV computes the exact JQ of the optimal (Bayesian) strategy:
// JQ = Σ_V max_t prior[t]·P(V|t).
func ExactBV(pool Pool, prior Prior) (float64, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return 0, err
	}
	l, n := pool.Labels(), len(pool)
	if err := checkExactSize(l, n); err != nil {
		return 0, err
	}
	votes := make([]Label, n)
	var jq float64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			best := 0.0
			for t := 0; t < l; t++ {
				p := prior[t]
				for j, w := range pool {
					p *= w.Confusion[t][votes[j]]
				}
				if p > best {
					best = p
				}
			}
			jq += best
			return
		}
		for v := 0; v < l; v++ {
			votes[i] = Label(v)
			rec(i + 1)
		}
	}
	rec(0)
	return jq, nil
}

func checkExactSize(l, n int) error {
	states := 1.0
	for i := 0; i < n; i++ {
		states *= float64(l)
		if states > MaxExactStates {
			return fmt.Errorf("%w: %d^%d votings", ErrJuryTooLarge, l, n)
		}
	}
	return nil
}

// logFloor guards against −Inf from zero confusion entries in the bucketed
// DP: probabilities are clamped to this floor before taking logs.
const logFloor = 1e-12

// DefaultEstimateBuckets is the margin resolution EstimateBV uses when
// numBuckets is 0.
const DefaultEstimateBuckets = 50

// EstimateBV approximates JQ(J, BV, prior) with the Section 7 bucketed
// dynamic program. For each candidate label t' it accumulates
//
//	H(t') = Σ_{V : BV(V) = t'} P(V | t')
//
// with a map from bucketed (ℓ−1)-tuples of log-posterior margins
// ln(prior[t']·P(V|t')) − ln(prior[j]·P(V|j)) (j ≠ t') to probability
// mass, expanding one worker per iteration; JQ = Σ_{t'} prior[t']·H(t').
// BV(V) = t' corresponds to all margins ≥ 0, with ties broken toward the
// smaller label (strict margin required against j < t').
//
// numBuckets controls the margin resolution per unit of the largest
// absolute per-worker log-ratio; 0 selects 50. Accuracy improves with more
// buckets, matching the binary Algorithm 1.
func EstimateBV(pool Pool, prior Prior, numBuckets int) (float64, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return 0, err
	}
	if numBuckets == 0 {
		numBuckets = DefaultEstimateBuckets
	}
	if numBuckets < 1 {
		return 0, fmt.Errorf("multichoice: numBuckets must be positive, got %d", numBuckets)
	}
	l, n := pool.Labels(), len(pool)

	// Pre-compute the per-worker log-ratio increments and the global
	// bucket width: Δ = (max |increment|)/numBuckets.
	logC := make([][][]float64, n) // [worker][truth][vote]
	var upper float64
	for i, w := range pool {
		logC[i] = make([][]float64, l)
		for t := 0; t < l; t++ {
			logC[i][t] = make([]float64, l)
			for v := 0; v < l; v++ {
				logC[i][t][v] = math.Log(math.Max(w.Confusion[t][v], logFloor))
			}
		}
		for t1 := 0; t1 < l; t1++ {
			for t2 := 0; t2 < l; t2++ {
				for v := 0; v < l; v++ {
					d := math.Abs(logC[i][t1][v] - logC[i][t2][v])
					if d > upper {
						upper = d
					}
				}
			}
		}
	}
	if upper == 0 {
		// Every worker is label-blind: BV follows the prior alone.
		best := 0.0
		for _, p := range prior {
			if p > best {
				best = p
			}
		}
		return best, nil
	}
	delta := upper / float64(numBuckets)
	bucket := func(x float64) int32 { return int32(math.Round(x / delta)) }

	var jq float64
	for tPrime := 0; tPrime < l; tPrime++ {
		// margin dimensions: every label j ≠ t'.
		others := make([]int, 0, l-1)
		for j := 0; j < l; j++ {
			if j != tPrime {
				others = append(others, j)
			}
		}
		base := make([]int32, len(others))
		for d, j := range others {
			base[d] = bucket(math.Log(math.Max(prior[tPrime], logFloor)) -
				math.Log(math.Max(prior[j], logFloor)))
		}
		// The expansion and the final accumulation walk the state maps in
		// sorted key order: float addition is not associative, so map
		// iteration order would otherwise leak into the result's last
		// ULPs. The serving layer (selection cache, bit-exact WAL replay)
		// requires JQ to be a pure function of its inputs.
		states := map[string]float64{encodeKey(base): 1}
		for i := 0; i < n; i++ {
			next := make(map[string]float64, len(states)*l)
			for _, key := range sortedKeys(states) {
				prob := states[key]
				margins := decodeKey(key, len(others))
				for v := 0; v < l; v++ {
					newMargins := make([]int32, len(others))
					for d, j := range others {
						newMargins[d] = margins[d] + bucket(logC[i][tPrime][v]-logC[i][j][v])
					}
					next[encodeKey(newMargins)] += prob * math.Exp(logC[i][tPrime][v])
				}
			}
			states = next
		}
		var h float64
		for _, key := range sortedKeys(states) {
			prob := states[key]
			margins := decodeKey(key, len(others))
			wins := true
			for d, j := range others {
				if j < tPrime {
					if margins[d] <= 0 { // strict: smaller label wins ties
						wins = false
						break
					}
				} else if margins[d] < 0 {
					wins = false
					break
				}
			}
			if wins {
				h += prob
			}
		}
		jq += prior[tPrime] * h
	}
	return jq, nil
}

// sortedKeys returns the map's keys in sorted order, the deterministic
// iteration order of the bucket DP.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// encodeKey packs a margin tuple into a map key.
func encodeKey(margins []int32) string {
	buf := make([]byte, 4*len(margins))
	for i, m := range margins {
		u := uint32(m)
		buf[4*i] = byte(u)
		buf[4*i+1] = byte(u >> 8)
		buf[4*i+2] = byte(u >> 16)
		buf[4*i+3] = byte(u >> 24)
	}
	return string(buf)
}

// decodeKey unpacks a map key into a margin tuple.
func decodeKey(key string, n int) []int32 {
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
			uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24)
	}
	return out
}

// Accuracy of the symmetric single-parameter model: a convenience for
// building test pools ordered by informativeness.
func sortByDiagonalDesc(pool Pool) Pool {
	out := append(Pool(nil), pool...)
	sort.SliceStable(out, func(i, j int) bool {
		return diagMean(out[i].Confusion) > diagMean(out[j].Confusion)
	})
	return out
}

func diagMean(m ConfusionMatrix) float64 {
	var sum float64
	for i := range m {
		sum += m[i][i]
	}
	return sum / float64(len(m))
}
