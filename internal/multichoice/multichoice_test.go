package multichoice

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/jq"
	"repro/internal/worker"
)

// symWorker builds a symmetric-confusion worker; panics on bad input (test
// helper only).
func symWorker(labels int, q, cost float64) Worker {
	m, err := NewSymmetricConfusion(labels, q)
	if err != nil {
		panic(err)
	}
	return Worker{Confusion: m, Cost: cost}
}

func symPool(labels int, qs ...float64) Pool {
	p := make(Pool, len(qs))
	for i, q := range qs {
		p[i] = symWorker(labels, q, 1)
	}
	return p
}

func TestNewSymmetricConfusion(t *testing.T) {
	m, err := NewSymmetricConfusion(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0.7 || math.Abs(m[0][1]-0.15) > 1e-12 {
		t.Fatalf("matrix = %v", m)
	}
	if _, err := NewSymmetricConfusion(1, 0.7); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("labels=1: err = %v", err)
	}
	if _, err := NewSymmetricConfusion(3, 1.5); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("q=1.5: err = %v", err)
	}
}

func TestConfusionMatrixValidate(t *testing.T) {
	bad := []ConfusionMatrix{
		{{1}},                         // 1x1
		{{0.5, 0.5}, {0.5}},           // ragged
		{{0.5, 0.5}, {0.7, 0.7}},      // row sum != 1
		{{1.5, -0.5}, {0.5, 0.5}},     // out of range
		{{0.5, 0.5}, {math.NaN(), 1}}, // NaN
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadMatrix) {
			t.Errorf("matrix %d: err = %v, want ErrBadMatrix", i, err)
		}
	}
}

func TestPriorValidate(t *testing.T) {
	if err := UniformPrior(3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Prior{
		{1},         // single label
		{0.5, 0.4},  // doesn't sum to 1
		{-0.1, 1.1}, // out of range
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadPrior) {
			t.Errorf("prior %d: err = %v, want ErrBadPrior", i, err)
		}
	}
}

func TestPoolValidate(t *testing.T) {
	if err := (Pool{}).Validate(); !errors.Is(err, ErrEmptyJury) {
		t.Errorf("empty: err = %v", err)
	}
	mixed := Pool{symWorker(2, 0.7, 1), symWorker(3, 0.7, 1)}
	if err := mixed.Validate(); !errors.Is(err, ErrArity) {
		t.Errorf("mixed labels: err = %v", err)
	}
	neg := Pool{{Confusion: mustSym(2, 0.7), Cost: -1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

func mustSym(l int, q float64) ConfusionMatrix {
	m, err := NewSymmetricConfusion(l, q)
	if err != nil {
		panic(err)
	}
	return m
}

func TestPluralityAndTieBreak(t *testing.T) {
	pool := symPool(3, 0.7, 0.7, 0.7)
	prior := UniformPrior(3)
	probs, err := Plurality{}.Probabilities([]Label{2, 2, 0}, pool, prior)
	if err != nil {
		t.Fatal(err)
	}
	if probs[2] != 1 {
		t.Fatalf("probs = %v, want label 2", probs)
	}
	// 1–1–1 tie goes to the smallest label.
	probs, err = Plurality{}.Probabilities([]Label{2, 1, 0}, pool, prior)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 {
		t.Fatalf("tie probs = %v, want label 0", probs)
	}
}

func TestBayesianUsesConfusionStructure(t *testing.T) {
	// Worker 0 is a "confuser": when truth is 1 they usually vote 2. A
	// vote of 2 from them plus weak votes for 1 should favour truth 1.
	confuser := ConfusionMatrix{
		{0.8, 0.1, 0.1},
		{0.1, 0.1, 0.8}, // votes 2 when truth is 1
		{0.1, 0.1, 0.8},
	}
	// Break the 1-vs-2 symmetry of the confuser with a second worker who
	// is mildly informative for truth 1.
	helper := mustSym(3, 0.5)
	pool := Pool{{Confusion: confuser}, {Confusion: helper}}
	prior := Prior{0.2, 0.5, 0.3}
	probs, err := Bayesian{}.Probabilities([]Label{2, 1}, pool, prior)
	if err != nil {
		t.Fatal(err)
	}
	// Posterior: t=0: 0.2·0.1·0.25; t=1: 0.5·0.8·0.5; t=2: 0.3·0.8·0.25.
	if probs[1] != 1 {
		t.Fatalf("probs = %v, want label 1", probs)
	}
}

func TestBinarySymmetricMatchesSingleQualityModel(t *testing.T) {
	// ℓ=2 symmetric confusion workers must reproduce the binary JQ.
	qs := []float64{0.9, 0.6, 0.6}
	mcPool := symPool(2, qs...)
	got, err := ExactBV(mcPool, UniformPrior(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := jq.ExactBV(worker.UniformCost(qs, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("multichoice ℓ=2 JQ = %v, binary JQ = %v", got, want)
	}
}

func TestBinaryWithPriorMatchesSingleQualityModel(t *testing.T) {
	qs := []float64{0.7, 0.8}
	mcPool := symPool(2, qs...)
	got, err := ExactBV(mcPool, Prior{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want, err := jq.ExactBV(worker.UniformCost(qs, 1), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ℓ=2 with prior: %v vs %v", got, want)
	}
}

func TestExactJQGenericMatchesExactBVForBayesian(t *testing.T) {
	pool := symPool(3, 0.8, 0.6, 0.7)
	prior := Prior{0.5, 0.25, 0.25}
	generic, err := ExactJQ(pool, Bayesian{}, prior)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ExactBV(pool, prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(generic-fast) > 1e-12 {
		t.Fatalf("generic %v != fast %v", generic, fast)
	}
}

func TestRandomBallotJQ(t *testing.T) {
	pool := symPool(4, 0.9, 0.9)
	got, err := ExactJQ(pool, RandomBallot{}, UniformPrior(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("JQ(RBV, ℓ=4) = %v, want 0.25", got)
	}
}

// Equation 10: BV is optimal among all strategies in the ℓ-ary model too.
func TestBVOptimalityMultiChoiceProperty(t *testing.T) {
	strategies := []Strategy{Plurality{}, RandomBallot{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(2) + 2 // ℓ ∈ {2, 3}
		n := rng.Intn(4) + 1
		pool := make(Pool, n)
		for i := range pool {
			pool[i] = randomWorker(rng, l)
		}
		prior := randomPrior(rng, l)
		best, err := ExactBV(pool, prior)
		if err != nil {
			return false
		}
		for _, s := range strategies {
			got, err := ExactJQ(pool, s, prior)
			if err != nil {
				return false
			}
			if got > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomWorker(rng *rand.Rand, l int) Worker {
	m := make(ConfusionMatrix, l)
	for j := range m {
		m[j] = make([]float64, l)
		var sum float64
		for k := range m[j] {
			m[j][k] = 0.05 + rng.Float64()
			sum += m[j][k]
		}
		for k := range m[j] {
			m[j][k] /= sum
		}
	}
	return Worker{Confusion: m, Cost: 0.1 + rng.Float64()}
}

func randomPrior(rng *rand.Rand, l int) Prior {
	p := make(Prior, l)
	var sum float64
	for i := range p {
		p[i] = 0.05 + rng.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Lemma 1 extension: adding a worker never decreases the ℓ-ary JQ.
func TestLemma1ExtensionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(2) + 2
		n := rng.Intn(4) + 1
		pool := make(Pool, n)
		for i := range pool {
			pool[i] = randomWorker(rng, l)
		}
		prior := randomPrior(rng, l)
		base, err := ExactBV(pool, prior)
		if err != nil {
			return false
		}
		bigger, err := ExactBV(append(pool, randomWorker(rng, l)), prior)
		if err != nil {
			return false
		}
		return bigger >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateBVConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		l := rng.Intn(2) + 2
		n := rng.Intn(4) + 2
		pool := make(Pool, n)
		for i := range pool {
			pool[i] = randomWorker(rng, l)
		}
		prior := randomPrior(rng, l)
		exact, err := ExactBV(pool, prior)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := EstimateBV(pool, prior, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-approx) > 0.01 {
			t.Fatalf("ℓ=%d n=%d: exact %v vs approx %v", l, n, exact, approx)
		}
	}
}

func TestEstimateBVBinaryAgreesWithAlgorithm1(t *testing.T) {
	qs := []float64{0.9, 0.6, 0.6}
	approx, err := EstimateBV(symPool(2, qs...), UniformPrior(2), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx-0.9) > 0.005 {
		t.Fatalf("ℓ=2 estimate = %v, want ≈0.90", approx)
	}
}

func TestEstimateBVLabelBlindWorkers(t *testing.T) {
	// Workers whose rows are identical carry no information; BV follows
	// the prior.
	blind := ConfusionMatrix{
		{0.5, 0.3, 0.2},
		{0.5, 0.3, 0.2},
		{0.5, 0.3, 0.2},
	}
	pool := Pool{{Confusion: blind}, {Confusion: blind}}
	prior := Prior{0.2, 0.7, 0.1}
	got, err := EstimateBV(pool, prior, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("JQ = %v, want 0.7 (prior max)", got)
	}
}

func TestEstimateBVRejectsBadBuckets(t *testing.T) {
	if _, err := EstimateBV(symPool(3, 0.7), UniformPrior(3), -1); err == nil {
		t.Fatal("no error for negative buckets")
	}
}

func TestExactJQSizeGuard(t *testing.T) {
	pool := make(Pool, 30)
	for i := range pool {
		pool[i] = symWorker(3, 0.7, 1)
	}
	if _, err := ExactBV(pool, UniformPrior(3)); !errors.Is(err, ErrJuryTooLarge) {
		t.Fatalf("err = %v, want ErrJuryTooLarge", err)
	}
}

func TestSelectExhaustiveMultiChoice(t *testing.T) {
	pool := Pool{
		symWorker(3, 0.9, 5),
		symWorker(3, 0.7, 2),
		symWorker(3, 0.6, 1),
	}
	prior := UniformPrior(3)
	res, err := SelectExhaustive(pool, 3, prior, ExactObjective)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 excludes the 0.9 worker; best is {0.7, 0.6}.
	if res.Cost > 3 {
		t.Fatalf("cost %v > 3", res.Cost)
	}
	want, err := ExactBV(Pool{symWorker(3, 0.7, 2), symWorker(3, 0.6, 1)}, prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-want) > 1e-12 {
		t.Fatalf("JQ = %v, want %v", res.JQ, want)
	}
}

func TestSelectAnnealingMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		l := 3
		n := rng.Intn(4) + 4
		pool := make(Pool, n)
		for i := range pool {
			pool[i] = randomWorker(rng, l)
		}
		prior := randomPrior(rng, l)
		budget := 0.5 + rng.Float64()
		exact, err := SelectExhaustive(pool, budget, prior, ExactObjective)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := SelectAnnealing(pool, budget, prior, ExactObjective, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if heur.Cost > budget+1e-12 {
			t.Fatalf("annealing violated budget: %v > %v", heur.Cost, budget)
		}
		if exact.JQ-heur.JQ > 0.05 {
			t.Fatalf("gap %v too large (exact %v, heuristic %v)", exact.JQ-heur.JQ, exact.JQ, heur.JQ)
		}
	}
}

func TestSelectValidation(t *testing.T) {
	pool := symPool(3, 0.7, 0.8)
	prior := UniformPrior(3)
	if _, err := SelectAnnealing(pool, -1, prior, ExactObjective, 1); err == nil {
		t.Error("no error for negative budget (annealing)")
	}
	if _, err := SelectExhaustive(pool, -1, prior, ExactObjective); err == nil {
		t.Error("no error for negative budget (exhaustive)")
	}
	if _, err := SelectAnnealing(nil, 1, prior, ExactObjective, 1); err == nil {
		t.Error("no error for empty pool")
	}
	if _, err := SelectExhaustive(pool, 1, Prior{0.5, 0.4}, ExactObjective); err == nil {
		t.Error("no error for bad prior")
	}
}

func TestSortByDiagonalDesc(t *testing.T) {
	pool := symPool(3, 0.6, 0.9, 0.7)
	sorted := sortByDiagonalDesc(pool)
	if diagMean(sorted[0].Confusion) != 0.9 || diagMean(sorted[2].Confusion) != 0.6 {
		t.Fatalf("sorted diagonals = %v, %v, %v",
			diagMean(sorted[0].Confusion), diagMean(sorted[1].Confusion), diagMean(sorted[2].Confusion))
	}
}
