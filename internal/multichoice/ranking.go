package multichoice

import (
	"math"
	"sort"
)

// The paper leaves open "what kind of confusion matrix will contribute
// more to the JQ" (Section 7) and points at the spammer-detection line of
// Ipeirotis et al. [18] and Raykar & Yu [34] for heuristics. This file
// implements that heuristic: a worker is informative exactly to the degree
// that their vote distribution *differs across truths* — a spammer's rows
// are identical (the vote carries no information about the truth), a
// perfect worker's rows are orthogonal point masses.

// InformativenessScore quantifies how much a worker's votes reveal about
// the true label: the mean total-variation distance between all pairs of
// confusion-matrix rows, in [0, 1]. Label-blind workers (identical rows —
// the Raykar–Yu spammer profile, including "always vote k" workers) score
// 0; a perfect worker scores 1. For the binary symmetric model the score
// reduces to |2q − 1|, the familiar evidence magnitude.
func InformativenessScore(m ConfusionMatrix) float64 {
	l := m.Labels()
	if l < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for j := 0; j < l; j++ {
		for k := j + 1; k < l; k++ {
			sum += totalVariation(m[j], m[k])
			pairs++
		}
	}
	return sum / float64(pairs)
}

func totalVariation(a, b []float64) float64 {
	var tv float64
	for i := range a {
		tv += math.Abs(a[i] - b[i])
	}
	return tv / 2
}

// RankWorkers orders pool indices by decreasing informativeness score,
// breaking ties toward cheaper workers. This is the heuristic worker
// ranking the paper suggests for the Lemma 2 extension.
func RankWorkers(pool Pool) []int {
	order := make([]int, len(pool))
	scores := make([]float64, len(pool))
	for i, w := range pool {
		order[i] = i
		scores[i] = InformativenessScore(w.Confusion)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return pool[order[a]].Cost < pool[order[b]].Cost
	})
	return order
}

// GreedyByInformativeness is a fast multi-choice jury selector: walk the
// informativeness ranking and add every worker who fits the remaining
// budget, then score the resulting jury once. A baseline against
// SelectAnnealing, in the spirit of the binary GreedyQuality selector.
func GreedyByInformativeness(pool Pool, budget float64, prior Prior, obj Objective) (SelectionResult, error) {
	if err := checkVoting(pool, prior, nil); err != nil {
		return SelectionResult{}, err
	}
	if budget < 0 || budget != budget {
		return SelectionResult{}, ErrBadBudget
	}
	var cost float64
	var chosen []int
	for _, idx := range RankWorkers(pool) {
		if c := pool[idx].Cost; cost+c <= budget {
			chosen = append(chosen, idx)
			cost += c
		}
	}
	sort.Ints(chosen)
	if len(chosen) == 0 {
		best := 0.0
		for _, p := range prior {
			if p > best {
				best = p
			}
		}
		return SelectionResult{Indices: []int{}, JQ: best}, nil
	}
	jury := pool.Subset(chosen)
	score, err := obj(jury, prior)
	if err != nil {
		return SelectionResult{}, err
	}
	return SelectionResult{
		Jury:        jury,
		Indices:     chosen,
		JQ:          score,
		Cost:        cost,
		Evaluations: 1,
	}, nil
}
