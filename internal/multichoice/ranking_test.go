package multichoice

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInformativenessScoreEndpoints(t *testing.T) {
	// A spammer: identical rows.
	spammer := ConfusionMatrix{
		{0.5, 0.3, 0.2},
		{0.5, 0.3, 0.2},
		{0.5, 0.3, 0.2},
	}
	if got := InformativenessScore(spammer); got != 0 {
		t.Fatalf("spammer score = %v, want 0", got)
	}
	// A perfect worker: identity matrix.
	perfect := ConfusionMatrix{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	}
	if got := InformativenessScore(perfect); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect score = %v, want 1", got)
	}
}

func TestInformativenessBinaryReducesToEvidence(t *testing.T) {
	for _, q := range []float64{0.5, 0.6, 0.8, 0.3, 1} {
		m, err := NewSymmetricConfusion(2, q)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Abs(2*q - 1)
		if got := InformativenessScore(m); math.Abs(got-want) > 1e-12 {
			t.Fatalf("q=%v: score = %v, want |2q−1| = %v", q, got, want)
		}
	}
}

func TestInformativenessMonotoneInDiagonalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(3) + 2
		q1 := 1.0/float64(l) + rng.Float64()*(1-1.0/float64(l))
		q2 := q1 + (1-q1)*rng.Float64()
		m1, err := NewSymmetricConfusion(l, q1)
		if err != nil {
			return false
		}
		m2, err := NewSymmetricConfusion(l, q2)
		if err != nil {
			return false
		}
		return InformativenessScore(m2) >= InformativenessScore(m1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRankWorkers(t *testing.T) {
	pool := Pool{
		symWorker(3, 0.5, 2),   // some information
		symWorker(3, 0.9, 5),   // most informative
		symWorker(3, 1.0/3, 1), // spammer (uniform rows)
	}
	order := RankWorkers(pool)
	if order[0] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want best first, spammer last", order)
	}
}

func TestRankWorkersTieBreaksByCost(t *testing.T) {
	pool := Pool{symWorker(3, 0.7, 5), symWorker(3, 0.7, 1)}
	order := RankWorkers(pool)
	if order[0] != 1 {
		t.Fatalf("order = %v, want cheaper first on equal scores", order)
	}
}

func TestGreedyByInformativenessRespectsBudget(t *testing.T) {
	pool := Pool{
		symWorker(3, 0.9, 5),
		symWorker(3, 0.8, 3),
		symWorker(3, 0.7, 1),
	}
	prior := UniformPrior(3)
	res, err := GreedyByInformativeness(pool, 4, prior, ExactObjective)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 4 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
	// Ranking walks best-first: the 0.9 worker doesn't fit after... it is
	// first (cost 5 > 4, skipped), then 0.8 (3 ≤ 4), then 0.7 (3+1 = 4).
	if len(res.Indices) != 2 || res.Indices[0] != 1 || res.Indices[1] != 2 {
		t.Fatalf("indices = %v, want [1 2]", res.Indices)
	}
}

func TestGreedyByInformativenessEmptyBudget(t *testing.T) {
	pool := symPool(3, 0.8)
	prior := Prior{0.6, 0.2, 0.2}
	res, err := GreedyByInformativeness(pool, 0, prior, ExactObjective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 0 || res.JQ != 0.6 {
		t.Fatalf("res = %+v, want empty jury at prior JQ 0.6", res)
	}
}

func TestGreedyByInformativenessValidation(t *testing.T) {
	pool := symPool(3, 0.8)
	if _, err := GreedyByInformativeness(pool, -1, UniformPrior(3), ExactObjective); !errors.Is(err, ErrBadBudget) {
		t.Fatalf("err = %v, want ErrBadBudget", err)
	}
	if _, err := GreedyByInformativeness(nil, 1, UniformPrior(3), ExactObjective); err == nil {
		t.Fatal("no error for empty pool")
	}
}

// The greedy ranking selector should be competitive with annealing on
// pools where informativeness-per-cost is roughly uniform.
func TestGreedyByInformativenessCompetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(4) + 5
		pool := make(Pool, n)
		for i := range pool {
			pool[i] = symWorker(3, 0.55+0.35*rng.Float64(), 1)
		}
		prior := UniformPrior(3)
		budget := float64(rng.Intn(n) + 1)
		greedy, err := GreedyByInformativeness(pool, budget, prior, ExactObjective)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SelectExhaustive(pool, budget, prior, ExactObjective)
		if err != nil {
			t.Fatal(err)
		}
		if exact.JQ-greedy.JQ > 0.02 {
			t.Fatalf("greedy %v too far below optimal %v (uniform costs)", greedy.JQ, exact.JQ)
		}
	}
}
