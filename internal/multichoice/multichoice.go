// Package multichoice extends the jury-selection machinery to the
// multiple-choice tasks and confusion-matrix worker model of Section 7 of
// Zheng et al. (EDBT 2015).
//
// A task has ℓ possible answers {0, …, ℓ−1} with one latent truth; the
// provider's prior is a distribution over the labels. Each worker is
// described by an ℓ×ℓ confusion matrix C where C[j][k] is the probability
// of voting k when the truth is j (Dawid & Skene [1], Ipeirotis et al.
// [18]). The single-quality binary model is the special case ℓ=2 with
// C = [[q, 1−q], [1−q, q]].
//
// The package proves out the paper's three extension claims: Bayesian
// voting remains optimal w.r.t. JQ (Equation 10), JQ can be computed by a
// bucketed dynamic program over tuples of log-posterior margins, and the
// annealing JSP solver carries over by treating JQ as a black box.
package multichoice

import (
	"errors"
	"fmt"
	"math"
)

// Label is a task answer in {0, …, ℓ−1}.
type Label int

// Errors returned by validation.
var (
	ErrBadMatrix    = errors.New("multichoice: invalid confusion matrix")
	ErrBadPrior     = errors.New("multichoice: invalid prior")
	ErrArity        = errors.New("multichoice: mismatched labels/votes/workers")
	ErrEmptyJury    = errors.New("multichoice: empty jury")
	ErrJuryTooLarge = errors.New("multichoice: jury too large for exact computation")
	ErrBadBudget    = errors.New("multichoice: negative budget")
)

// ConfusionMatrix is an ℓ×ℓ row-stochastic matrix: entry [j][k] is the
// probability the worker votes k when the true label is j.
type ConfusionMatrix [][]float64

// NewSymmetricConfusion builds the symmetric single-parameter matrix with
// diagonal q and uniform off-diagonal mass (1−q)/(ℓ−1): the natural
// generalization of the binary quality model.
func NewSymmetricConfusion(labels int, q float64) (ConfusionMatrix, error) {
	if labels < 2 {
		return nil, fmt.Errorf("%w: need at least 2 labels, got %d", ErrBadMatrix, labels)
	}
	if q < 0 || q > 1 || q != q {
		return nil, fmt.Errorf("%w: diagonal %v outside [0, 1]", ErrBadMatrix, q)
	}
	off := (1 - q) / float64(labels-1)
	m := make(ConfusionMatrix, labels)
	for j := range m {
		m[j] = make([]float64, labels)
		for k := range m[j] {
			if j == k {
				m[j][k] = q
			} else {
				m[j][k] = off
			}
		}
	}
	return m, nil
}

// Labels returns ℓ.
func (m ConfusionMatrix) Labels() int { return len(m) }

// Validate checks squareness, entry ranges, and row sums.
func (m ConfusionMatrix) Validate() error {
	l := len(m)
	if l < 2 {
		return fmt.Errorf("%w: %d labels", ErrBadMatrix, l)
	}
	for j, row := range m {
		if len(row) != l {
			return fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadMatrix, j, len(row), l)
		}
		var sum float64
		for k, p := range row {
			if p < 0 || p > 1 || p != p {
				return fmt.Errorf("%w: entry [%d][%d] = %v", ErrBadMatrix, j, k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("%w: row %d sums to %v", ErrBadMatrix, j, sum)
		}
	}
	return nil
}

// Worker is a multi-choice crowd worker.
type Worker struct {
	ID        string
	Confusion ConfusionMatrix
	Cost      float64
}

// Validate checks the worker.
func (w Worker) Validate() error {
	if err := w.Confusion.Validate(); err != nil {
		return fmt.Errorf("worker %q: %w", w.ID, err)
	}
	if w.Cost < 0 || w.Cost != w.Cost {
		return fmt.Errorf("multichoice: worker %q has negative cost %v", w.ID, w.Cost)
	}
	return nil
}

// Pool is an ordered set of multi-choice workers sharing a label count.
type Pool []Worker

// Labels returns the common ℓ, or 0 for an empty pool.
func (p Pool) Labels() int {
	if len(p) == 0 {
		return 0
	}
	return p[0].Confusion.Labels()
}

// Validate checks every worker and that all share one label count.
func (p Pool) Validate() error {
	if len(p) == 0 {
		return ErrEmptyJury
	}
	l := p.Labels()
	for i, w := range p {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		if w.Confusion.Labels() != l {
			return fmt.Errorf("%w: worker %d has %d labels, want %d", ErrArity, i, w.Confusion.Labels(), l)
		}
	}
	return nil
}

// TotalCost sums the member costs.
func (p Pool) TotalCost() float64 {
	var sum float64
	for _, w := range p {
		sum += w.Cost
	}
	return sum
}

// Subset returns the pool restricted to indices.
func (p Pool) Subset(indices []int) Pool {
	out := make(Pool, len(indices))
	for i, idx := range indices {
		out[i] = p[idx]
	}
	return out
}

// Prior is the provider's distribution over the ℓ labels.
type Prior []float64

// UniformPrior returns the maximum-entropy prior over ℓ labels.
func UniformPrior(labels int) Prior {
	p := make(Prior, labels)
	for i := range p {
		p[i] = 1 / float64(labels)
	}
	return p
}

// Validate checks the prior sums to one.
func (p Prior) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("%w: %d labels", ErrBadPrior, len(p))
	}
	var sum float64
	for i, v := range p {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("%w: entry %d = %v", ErrBadPrior, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: sums to %v", ErrBadPrior, sum)
	}
	return nil
}

// checkVoting validates a (pool, prior, votes) triple.
func checkVoting(pool Pool, prior Prior, votes []Label) error {
	if err := pool.Validate(); err != nil {
		return err
	}
	if err := prior.Validate(); err != nil {
		return err
	}
	l := pool.Labels()
	if len(prior) != l {
		return fmt.Errorf("%w: prior has %d labels, pool %d", ErrArity, len(prior), l)
	}
	if votes != nil {
		if len(votes) != len(pool) {
			return fmt.Errorf("%w: %d votes for %d workers", ErrArity, len(votes), len(pool))
		}
		for i, v := range votes {
			if v < 0 || int(v) >= l {
				return fmt.Errorf("%w: vote %d = %d outside [0, %d)", ErrArity, i, v, l)
			}
		}
	}
	return nil
}

// Strategy estimates the true label from a voting. Probabilities returns
// the distribution over returned labels (a point mass for deterministic
// strategies), mirroring the binary package's ProbZero generalized to ℓ.
type Strategy interface {
	Name() string
	Deterministic() bool
	Probabilities(votes []Label, pool Pool, prior Prior) ([]float64, error)
}

// Plurality returns the label with the most votes, breaking ties toward
// the smallest label. It is the ℓ-ary analogue of Majority Voting.
type Plurality struct{}

// Name implements Strategy.
func (Plurality) Name() string { return "PLURALITY" }

// Deterministic implements Strategy.
func (Plurality) Deterministic() bool { return true }

// Probabilities implements Strategy.
func (Plurality) Probabilities(votes []Label, pool Pool, prior Prior) ([]float64, error) {
	if err := checkVoting(pool, prior, votes); err != nil {
		return nil, err
	}
	l := pool.Labels()
	counts := make([]int, l)
	for _, v := range votes {
		counts[v]++
	}
	best := 0
	for t := 1; t < l; t++ {
		if counts[t] > counts[best] {
			best = t
		}
	}
	out := make([]float64, l)
	out[best] = 1
	return out, nil
}

// Bayesian returns argmax_t prior[t]·Π_i C_i[t][v_i], ties toward the
// smallest label — the optimal strategy of Equation 10.
type Bayesian struct{}

// Name implements Strategy.
func (Bayesian) Name() string { return "BV" }

// Deterministic implements Strategy.
func (Bayesian) Deterministic() bool { return true }

// Probabilities implements Strategy.
func (Bayesian) Probabilities(votes []Label, pool Pool, prior Prior) ([]float64, error) {
	if err := checkVoting(pool, prior, votes); err != nil {
		return nil, err
	}
	post, err := Posterior(votes, pool, prior)
	if err != nil {
		return nil, err
	}
	best := 0
	for t := 1; t < len(post); t++ {
		if post[t] > post[best] {
			best = t
		}
	}
	out := make([]float64, len(post))
	out[best] = 1
	return out, nil
}

// Posterior returns the unnormalized posterior prior[t]·Π_i C_i[t][v_i]
// for each label t.
func Posterior(votes []Label, pool Pool, prior Prior) ([]float64, error) {
	if err := checkVoting(pool, prior, votes); err != nil {
		return nil, err
	}
	l := pool.Labels()
	post := make([]float64, l)
	for t := 0; t < l; t++ {
		p := prior[t]
		for i, w := range pool {
			p *= w.Confusion[t][votes[i]]
		}
		post[t] = p
	}
	return post, nil
}

// RandomBallot returns a uniformly random label regardless of the votes.
type RandomBallot struct{}

// Name implements Strategy.
func (RandomBallot) Name() string { return "RBV" }

// Deterministic implements Strategy.
func (RandomBallot) Deterministic() bool { return false }

// Probabilities implements Strategy.
func (RandomBallot) Probabilities(votes []Label, pool Pool, prior Prior) ([]float64, error) {
	if err := checkVoting(pool, prior, votes); err != nil {
		return nil, err
	}
	l := pool.Labels()
	out := make([]float64, l)
	for i := range out {
		out[i] = 1 / float64(l)
	}
	return out, nil
}
