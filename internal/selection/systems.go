package selection

import (
	"repro/internal/anneal"
	"repro/internal/worker"
)

// AutoExhaustiveMaxN is the pool size at or below which the Auto selector
// uses exhaustive search instead of annealing. 2^15 subsets with a cheap
// objective still completes in milliseconds.
const AutoExhaustiveMaxN = 15

// Auto picks the search automatically: exhaustive enumeration for pools of
// at most MaxN candidates (exact answer), simulated annealing beyond that.
// This mirrors how the paper evaluates: exact where tractable, Algorithm 3
// elsewhere.
type Auto struct {
	Objective Objective
	// MaxN defaults to AutoExhaustiveMaxN when zero.
	MaxN int
	// Seed drives the annealing path.
	Seed int64
	// Schedule configures annealing; zero uses the paper's schedule.
	Schedule anneal.Schedule
	// Restarts configures annealing restarts; zero means 1.
	Restarts int
	// AllowRemoval enables the removal-move extension of the annealing
	// search (see Annealing.AllowRemoval).
	AllowRemoval bool
}

// Name implements Selector.
func (a Auto) Name() string { return "auto(" + a.Objective.Name() + ")" }

// Select implements Selector.
func (a Auto) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	maxN := a.MaxN
	if maxN == 0 {
		maxN = AutoExhaustiveMaxN
	}
	if len(pool) <= maxN {
		return Exhaustive{Objective: a.Objective}.Select(pool, budget, alpha)
	}
	return Annealing{
		Objective:    a.Objective,
		Seed:         a.Seed,
		Schedule:     a.Schedule,
		Restarts:     a.Restarts,
		AllowRemoval: a.AllowRemoval,
	}.Select(pool, budget, alpha)
}

// OPTJS is the paper's Optimal Jury Selection System: JSP under the
// (approximated) Bayesian-Voting objective, exact search for small pools
// and Algorithm 3 annealing beyond. The production configuration runs two
// annealing restarts with the removal-move extension, which smooths the
// rare search traps of the plain algorithm; use Annealing directly for the
// paper-faithful single pass.
func OPTJS(seed int64) Selector {
	return Auto{Objective: BVObjective{}, Seed: seed, Restarts: 2, AllowRemoval: true}
}

// MVJS is the baseline system of Cao et al. [7]: JSP under the
// Majority-Voting objective at uniform prior, with the same search
// configuration as OPTJS so comparisons isolate the voting strategy.
func MVJS(seed int64) Selector {
	return Auto{Objective: MVObjective{}, Seed: seed, Restarts: 2, AllowRemoval: true}
}
