package selection

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/jq"
	"repro/internal/worker"
)

// figure1Pool is the running example of the paper's Figure 1: seven
// candidate workers A–G with (quality, cost) pairs.
func figure1Pool() worker.Pool {
	return worker.Pool{
		{ID: "A", Quality: 0.77, Cost: 9},
		{ID: "B", Quality: 0.70, Cost: 5},
		{ID: "C", Quality: 0.80, Cost: 6},
		{ID: "D", Quality: 0.65, Cost: 7},
		{ID: "E", Quality: 0.60, Cost: 5},
		{ID: "F", Quality: 0.60, Cost: 2},
		{ID: "G", Quality: 0.75, Cost: 3},
	}
}

func ids(p worker.Pool) []string {
	out := make([]string, len(p))
	for i, w := range p {
		out[i] = w.ID
	}
	return out
}

// TestFigure1BudgetQualityTable reproduces the paper's headline example:
// the optimal juries and their JQ for budgets 5, 10, 15, 20.
func TestFigure1BudgetQualityTable(t *testing.T) {
	pool := figure1Pool()
	sel := Exhaustive{Objective: BVExactObjective{}}
	tests := []struct {
		budget float64
		// wantIDs lists acceptable optimal juries: the paper reports
		// {A,C,F,G} at budget 20, but {A,C,G} has identical JQ (worker F's
		// ±φ(0.6) can never flip the Bayesian decision of A, C, G), and
		// this implementation tie-breaks toward the cheaper jury.
		wantIDs  [][]string
		wantJQ   float64
		wantCost []float64
	}{
		// {G} ties {F,G} at 0.75 and {C} ties {C,G} at 0.80: under BV the
		// dominant worker's log-odds exceed the weaker one's, so the weak
		// vote never flips the decision and contributes nothing to JQ.
		{5, [][]string{{"F", "G"}, {"G"}}, 0.75, []float64{5, 3}},
		{10, [][]string{{"C", "G"}, {"C"}}, 0.80, []float64{9, 6}},
		{15, [][]string{{"B", "C", "G"}}, 0.845, []float64{14}},
		{20, [][]string{{"A", "C", "F", "G"}, {"A", "C", "G"}}, 0.8695, []float64{20, 18}},
	}
	for _, tt := range tests {
		res, err := sel.Select(pool, tt.budget, 0.5)
		if err != nil {
			t.Fatalf("budget %v: %v", tt.budget, err)
		}
		got := ids(res.Jury)
		matched := -1
		for i, want := range tt.wantIDs {
			if reflect.DeepEqual(got, want) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("budget %v: jury = %v, want one of %v", tt.budget, got, tt.wantIDs)
			continue
		}
		if math.Abs(res.JQ-tt.wantJQ) > 1e-9 {
			t.Errorf("budget %v: JQ = %v, want %v", tt.budget, res.JQ, tt.wantJQ)
		}
		if math.Abs(res.Cost-tt.wantCost[matched]) > 1e-9 {
			t.Errorf("budget %v: cost = %v, want %v", tt.budget, res.Cost, tt.wantCost[matched])
		}
	}
}

func TestExhaustiveEmptyBudget(t *testing.T) {
	res, err := Exhaustive{Objective: BVExactObjective{}}.Select(figure1Pool(), 0, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jury) != 0 {
		t.Fatalf("jury = %v, want empty", res.Jury)
	}
	if math.Abs(res.JQ-0.7) > 1e-12 {
		t.Fatalf("empty-jury JQ = %v, want 0.7 (prior only)", res.JQ)
	}
}

func TestExhaustiveRejectsHugePool(t *testing.T) {
	big := make(worker.Pool, MaxExhaustiveN+1)
	for i := range big {
		big[i] = worker.Worker{Quality: 0.7, Cost: 1}
	}
	_, err := Exhaustive{Objective: MVObjective{}}.Select(big, 5, 0.5)
	if !errors.Is(err, ErrPoolTooLarge) {
		t.Fatalf("err = %v, want ErrPoolTooLarge", err)
	}
}

func TestSelectInputValidation(t *testing.T) {
	selectors := []Selector{
		Exhaustive{Objective: MVObjective{}},
		Annealing{Objective: MVObjective{}},
		GreedyQuality{Objective: MVObjective{}},
		GreedyRatio{Objective: MVObjective{}},
		TopK{Objective: MVObjective{}, K: 3},
		Auto{Objective: MVObjective{}},
	}
	pool := figure1Pool()
	for _, sel := range selectors {
		t.Run(sel.Name(), func(t *testing.T) {
			if _, err := sel.Select(nil, 5, 0.5); err == nil {
				t.Error("no error for empty pool")
			}
			if _, err := sel.Select(pool, -1, 0.5); err == nil {
				t.Error("no error for negative budget")
			}
			if _, err := sel.Select(pool, 5, 1.5); err == nil {
				t.Error("no error for invalid prior")
			}
		})
	}
}

func TestAnnealingFindsFigure1Optimum(t *testing.T) {
	pool := figure1Pool()
	sel := Annealing{Objective: BVExactObjective{}, Seed: 1}
	res, err := sel.Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-0.845) > 1e-9 {
		t.Fatalf("annealing JQ = %v, want 0.845", res.JQ)
	}
	if got := ids(res.Jury); !reflect.DeepEqual(got, []string{"B", "C", "G"}) {
		t.Fatalf("jury = %v, want [B C G]", got)
	}
}

func TestAnnealingDeterministicUnderSeed(t *testing.T) {
	pool := figure1Pool()
	a := Annealing{Objective: BVObjective{}, Seed: 7}
	r1, err := a.Select(pool, 12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Select(pool, 12, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Indices, r2.Indices) || r1.JQ != r2.JQ {
		t.Fatalf("same seed diverged: %v vs %v", r1, r2)
	}
}

func TestAnnealingRestartsNeverHurt(t *testing.T) {
	pool := figure1Pool()
	single, err := Annealing{Objective: BVExactObjective{}, Seed: 3}.Select(pool, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Annealing{Objective: BVExactObjective{}, Seed: 3, Restarts: 4}.Select(pool, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if multi.JQ < single.JQ-1e-12 {
		t.Fatalf("restarts reduced JQ: %v < %v", multi.JQ, single.JQ)
	}
	if multi.Evaluations <= single.Evaluations {
		t.Fatalf("restarts should cost more evaluations: %d vs %d", multi.Evaluations, single.Evaluations)
	}
}

// Property: annealing always returns a feasible jury and comes close to the
// exhaustive optimum on instances drawn from the paper's synthetic
// distribution (Figure 7a / Table 3 claim): quality N(0.7, 0.05),
// cost N(0.05, 0.2²) clamped positive, budget in [0.05, 0.5].
func TestAnnealingNearOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 4
		pool := make(worker.Pool, n)
		for i := range pool {
			cost := math.Abs(rng.NormFloat64()*0.2 + 0.05)
			if cost < 0.01 {
				cost = 0.01
			}
			pool[i] = worker.Worker{
				Quality: 0.5 + 0.45*rng.Float64(),
				Cost:    cost,
			}
		}
		budget := 0.05 + 0.45*rng.Float64()
		exact, err := Exhaustive{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		// The production OPTJS configuration (restarts + removal move);
		// the plain single-pass Algorithm 3 exhibits rare larger gaps on
		// this cost distribution (see the table3 experiment note).
		heur, err := Annealing{Objective: BVExactObjective{}, Seed: seed, Restarts: 2, AllowRemoval: true}.
			Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		if heur.Cost > budget+1e-12 {
			return false
		}
		if heur.JQ > exact.JQ+1e-9 { // cannot beat the optimum
			return false
		}
		// Table 3 reports the vast majority of gaps below 0.01% with a
		// worst case under 3%; allow a little slack for these arbitrary
		// random instances.
		return exact.JQ-heur.JQ < 0.05
	}
	// Fixed generator: the property is statistical (rare tail gaps exist by
	// design), so the CI run must be reproducible.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(20150323))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyQualityOptimalForUniformCosts(t *testing.T) {
	// With equal costs the top-⌊B/c⌋ workers by quality are optimal
	// (Lemma 2 consequence, Section 5).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(6) + 4
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.5 + 0.45*rng.Float64()
		}
		pool := worker.UniformCost(qs, 1)
		budget := float64(rng.Intn(n) + 1)
		exact, err := Exhaustive{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyQuality{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(greedy.JQ-exact.JQ) > 1e-9 {
			t.Fatalf("uniform costs: greedy JQ %v != optimal %v (qs=%v, B=%v)",
				greedy.JQ, exact.JQ, qs, budget)
		}
	}
}

func TestGreedySelectorsRespectBudget(t *testing.T) {
	pool := figure1Pool()
	for _, sel := range []Selector{
		GreedyQuality{Objective: MVObjective{}},
		GreedyRatio{Objective: MVObjective{}},
		TopK{Objective: MVObjective{}, K: 3},
	} {
		for _, budget := range []float64{0, 3, 7.5, 14, 100} {
			res, err := sel.Select(pool, budget, 0.5)
			if err != nil {
				t.Fatalf("%s: %v", sel.Name(), err)
			}
			if res.Cost > budget+1e-12 {
				t.Errorf("%s: cost %v exceeds budget %v", sel.Name(), res.Cost, budget)
			}
		}
	}
}

func TestGreedyRatioPrefersFreeWorkers(t *testing.T) {
	pool := worker.Pool{
		{ID: "paid", Quality: 0.9, Cost: 5},
		{ID: "free", Quality: 0.6, Cost: 0},
	}
	res, err := GreedyRatio{Objective: BVExactObjective{}}.Select(pool, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jury) != 2 {
		t.Fatalf("jury = %v, want both workers", res.Jury)
	}
}

func TestTopKLimitsJurySize(t *testing.T) {
	pool := figure1Pool()
	res, err := TopK{Objective: MVObjective{}, K: 2}.Select(pool, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jury) != 2 {
		t.Fatalf("jury size = %d, want 2", len(res.Jury))
	}
	// Highest-quality pair is C (0.8) and A (0.77).
	if got := ids(res.Jury); !reflect.DeepEqual(got, []string{"A", "C"}) {
		t.Fatalf("jury = %v, want [A C]", got)
	}
}

func TestAutoDispatch(t *testing.T) {
	pool := figure1Pool() // N=7 ≤ 15 → exhaustive
	res, err := Auto{Objective: BVExactObjective{}, Seed: 1}.Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.JQ-0.845) > 1e-9 {
		t.Fatalf("auto (exhaustive path) JQ = %v, want 0.845", res.JQ)
	}
	// Force the annealing path with MaxN = 1.
	res2, err := Auto{Objective: BVExactObjective{}, Seed: 1, MaxN: 1}.Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost > 15 {
		t.Fatalf("annealing path violated budget: %v", res2.Cost)
	}
}

// The paper's central end-to-end claim: juries selected by OPTJS are at
// least as good as MVJS juries when both are scored under the optimal
// strategy (BV).
func TestOPTJSDominatesMVJSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 5
		pool := make(worker.Pool, n)
		for i := range pool {
			pool[i] = worker.Worker{
				Quality: 0.5 + 0.45*rng.Float64(),
				Cost:    0.01 + rng.Float64(),
			}
		}
		budget := 0.3 + 1.5*rng.Float64()
		// Exhaustive search for both objectives: isolates the strategy
		// effect from search noise.
		opt, err := Exhaustive{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		mv, err := Exhaustive{Objective: MVObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		mvUnderBV, err := BVExactObjective{}.JQ(mv.Jury, 0.5)
		if err != nil {
			return false
		}
		return opt.JQ >= mvUnderBV-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTJSAndMVJSConstructors(t *testing.T) {
	pool := figure1Pool()
	opt, err := OPTJS(1).Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := MVJS(1).Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	optBV, err := jq.ExactBV(opt.Jury, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mvBV, err := jq.ExactBV(mv.Jury, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if optBV < mvBV-1e-9 {
		t.Fatalf("OPTJS jury (%v) scored below MVJS jury (%v) under BV", optBV, mvBV)
	}
}

func TestObjectiveNames(t *testing.T) {
	names := map[string]Objective{
		"BV":       BVObjective{},
		"BV-exact": BVExactObjective{},
		"MV":       MVObjective{},
	}
	for want, obj := range names {
		if obj.Name() != want {
			t.Errorf("Name = %q, want %q", obj.Name(), want)
		}
	}
}

func TestEmptyJuryObjectives(t *testing.T) {
	for _, obj := range []Objective{BVObjective{}, BVExactObjective{}, MVObjective{}} {
		got, err := obj.JQ(nil, 0.8)
		if err != nil {
			t.Fatalf("%s: %v", obj.Name(), err)
		}
		if got != 0.8 {
			t.Errorf("%s: empty jury JQ = %v, want 0.8", obj.Name(), got)
		}
	}
}

// Property: exhaustive never returns an infeasible or dominated jury; the
// budget-quality curve is monotone in the budget.
func TestExhaustiveMonotoneInBudgetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 3
		pool := make(worker.Pool, n)
		for i := range pool {
			pool[i] = worker.Worker{
				Quality: 0.5 + 0.45*rng.Float64(),
				Cost:    0.01 + rng.Float64(),
			}
		}
		sel := Exhaustive{Objective: BVExactObjective{}}
		prev := -1.0
		for _, budget := range []float64{0.2, 0.5, 1.0, 2.0, 5.0} {
			res, err := sel.Select(pool, budget, 0.5)
			if err != nil {
				return false
			}
			if res.Cost > budget+1e-12 {
				return false
			}
			if res.JQ < prev-1e-12 {
				return false
			}
			prev = res.JQ
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
