package selection

import (
	"math"
	"sort"

	"repro/internal/worker"
)

// GreedyQuality adds workers in decreasing quality order, skipping anyone
// who does not fit the remaining budget. It is optimal when all costs are
// equal (Lemma 2 of the paper) and a fast baseline otherwise.
type GreedyQuality struct {
	Objective Objective
}

// Name implements Selector.
func (g GreedyQuality) Name() string { return "greedy-quality(" + g.Objective.Name() + ")" }

// Select implements Selector.
func (g GreedyQuality) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	order := rankedIndices(pool, func(a, b worker.Worker) bool {
		if a.Quality != b.Quality {
			return a.Quality > b.Quality
		}
		return a.Cost < b.Cost
	})
	return greedyFill(pool, order, budget, alpha, g.Objective)
}

// GreedyRatio adds workers in decreasing informativeness-per-cost order,
// where informativeness is the Bayesian log-odds weight φ(q) = ln(q/(1−q))
// of the normalized quality. Free workers (cost 0) rank first. This is the
// knapsack-style density heuristic used as an ablation baseline.
type GreedyRatio struct {
	Objective Objective
}

// Name implements Selector.
func (g GreedyRatio) Name() string { return "greedy-ratio(" + g.Objective.Name() + ")" }

// Select implements Selector.
func (g GreedyRatio) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	density := func(w worker.Worker) float64 {
		q := w.Quality
		if q < 0.5 {
			q = 1 - q
		}
		if q >= 1 {
			q = 1 - 1e-9
		}
		info := math.Log(q / (1 - q))
		if w.Cost == 0 {
			return math.Inf(1)
		}
		return info / w.Cost
	}
	order := rankedIndices(pool, func(a, b worker.Worker) bool {
		da, db := density(a), density(b)
		if da != db {
			return da > db
		}
		return a.Cost < b.Cost
	})
	return greedyFill(pool, order, budget, alpha, g.Objective)
}

// TopK selects the K highest-quality workers that fit the budget (greedily,
// in quality order). With uniform costs c and K = ⌊B/c⌋ this is the optimal
// jury (Lemma 2); with heterogeneous costs it is a baseline.
type TopK struct {
	Objective Objective
	K         int
}

// Name implements Selector.
func (t TopK) Name() string { return "topk(" + t.Objective.Name() + ")" }

// Select implements Selector.
func (t TopK) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	order := rankedIndices(pool, func(a, b worker.Worker) bool {
		if a.Quality != b.Quality {
			return a.Quality > b.Quality
		}
		return a.Cost < b.Cost
	})
	if t.K < len(order) {
		order = order[:t.K]
	}
	return greedyFill(pool, order, budget, alpha, t.Objective)
}

// rankedIndices returns pool indices sorted by the given worker ordering.
func rankedIndices(pool worker.Pool, less func(a, b worker.Worker) bool) []int {
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return less(pool[order[i]], pool[order[j]])
	})
	return order
}

// greedyFill walks the ranked indices, adding every worker that still fits
// the budget, then scores the resulting jury once through the generic
// subset adapter (a per-pool evaluator engine would not amortize over a
// single evaluation).
func greedyFill(pool worker.Pool, order []int, budget, alpha float64, obj Objective) (Result, error) {
	var cost float64
	var chosen []int
	for _, idx := range order {
		c := pool[idx].Cost
		if cost+c <= budget {
			chosen = append(chosen, idx)
			cost += c
		}
	}
	indices := sortedCopy(chosen)
	// One jury is scored exactly once, so the generic adapter is the
	// right evaluator here: a per-pool engine (EvaluatorProvider) pays
	// O(N) precompute that only amortizes over repeated evaluations.
	eval := &fallbackEvaluator{obj: obj, pool: pool, alpha: alpha}
	score, err := eval.Eval(indices)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Jury:        pool.Subset(indices),
		Indices:     indices,
		JQ:          score,
		Cost:        cost,
		Evaluations: 1,
	}, nil
}
