package selection

import (
	"math/rand"
	"runtime"

	"repro/internal/anneal"
	"repro/internal/conc"
	"repro/internal/worker"
)

// restartSeedStride separates the derived RNG seeds of annealing
// restarts; restart r runs on Seed + r·restartSeedStride.
const restartSeedStride = 0x9E3779B9

// Annealing is the simulated-annealing JSP heuristic of Algorithm 3, with
// the add-or-swap local search of Algorithm 4. The state is the selection
// vector X over the N candidates; at each of the N local searches per
// temperature level a random candidate r is drawn and either added (when it
// fits the remaining budget) or swapped against a random member/non-member,
// accepting worsening swaps with Boltzmann probability exp(Δ/T).
//
// Unlike the paper's pseudo-code, the best jury seen across the whole run
// is returned rather than the final state; this never hurts and makes the
// returned quality monotone in the number of iterations.
//
// Objective evaluations go through the objective's Evaluator fast path
// (see EvaluatorProvider): the per-pool setup runs once per restart, and
// each move is scored from precomputed state with no per-move allocation.
type Annealing struct {
	Objective Objective
	// Schedule defaults to anneal.DefaultSchedule() when zero.
	Schedule anneal.Schedule
	// Seed makes runs reproducible. Two selectors with equal seeds and
	// inputs return identical juries.
	Seed int64
	// Restarts runs the annealing loop multiple times (fresh random state,
	// derived seeds) and keeps the best jury. Zero means 1. Restarts fan
	// out across a bounded goroutine pool; because every restart derives
	// its RNG and evaluator independently and the results are folded in
	// restart order, the outcome is identical to running them
	// sequentially.
	Restarts int
	// AllowRemoval extends Algorithm 4 with a pure removal move: when the
	// chosen swap is infeasible (it would exceed the budget), the member
	// that would have left the jury may be removed outright, accepted by
	// the same Boltzmann rule. Removals typically lower JQ (Lemma 1), so
	// they fire mostly at high temperature — but they let the search
	// escape juries packed with cheap workers that block every single
	// swap toward an expensive high-quality worker. This is an extension
	// over the paper's algorithm and is off by default.
	AllowRemoval bool
}

// Name implements Selector.
func (a Annealing) Name() string { return "anneal(" + a.Objective.Name() + ")" }

// Select implements Selector.
func (a Annealing) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	schedule := a.Schedule
	if schedule == (anneal.Schedule{}) {
		schedule = anneal.DefaultSchedule()
	}
	if err := schedule.Validate(); err != nil {
		return Result{}, err
	}
	restarts := a.Restarts
	if restarts < 1 {
		restarts = 1
	}
	results := make([]Result, restarts)
	errs := make([]error, restarts)
	conc.ForEach(runtime.GOMAXPROCS(0), restarts, func(r int) {
		rng := rand.New(rand.NewSource(a.Seed + int64(r)*restartSeedStride))
		results[r], errs[r] = a.run(pool, budget, alpha, schedule, rng)
	})
	// Fold in restart order so the result matches a sequential run
	// bit for bit: the first error wins, ties keep the earlier restart.
	var best Result
	bestSet := false
	evals := 0
	for r := 0; r < restarts; r++ {
		if errs[r] != nil {
			return Result{}, errs[r]
		}
		evals += results[r].Evaluations
		if !bestSet || results[r].JQ > best.JQ {
			best = results[r]
			bestSet = true
		}
	}
	best.Evaluations = evals
	return best, nil
}

// annealSearch is the mutable state of one annealing pass: the selection
// vector, the member list, and the scratch buffer the swap move builds
// candidate juries in. members and spare are two fixed backing arrays
// that trade roles when a move is accepted, so the whole search allocates
// nothing per move.
type annealSearch struct {
	costs        []float64
	eval         Evaluator
	budget       float64
	rng          *rand.Rand
	allowRemoval bool

	selected []bool // X
	members  []int
	spare    []int
	cost     float64 // M
	curJQ    float64
	evals    int
}

func (s *annealSearch) objective(indices []int) (float64, error) {
	s.evals++
	return s.eval.Eval(indices)
}

// run executes one annealing pass (Algorithm 3).
func (a Annealing) run(pool worker.Pool, budget, alpha float64, schedule anneal.Schedule, rng *rand.Rand) (Result, error) {
	n := len(pool)
	eval, err := newEvaluator(a.Objective, pool, alpha)
	if err != nil {
		return Result{}, err
	}
	s := &annealSearch{
		costs:        pool.Costs(),
		eval:         eval,
		budget:       budget,
		rng:          rng,
		allowRemoval: a.AllowRemoval,
		selected:     make([]bool, n),
		members:      make([]int, 0, n),
		spare:        make([]int, 0, n),
	}

	s.curJQ, err = s.objective(s.members)
	if err != nil {
		return Result{}, err
	}
	bestJQ := s.curJQ
	bestMembers := append([]int(nil), s.members...)
	bestCost := s.cost

	var loopErr error
	_, err = anneal.Run(schedule, func(temp float64) {
		if loopErr != nil {
			return
		}
		for step := 0; step < n; step++ {
			r := s.rng.Intn(n)
			if !s.selected[r] && s.cost+s.costs[r] <= s.budget {
				// Add r (Algorithm 3, steps 9–11).
				s.selected[r] = true
				s.members = append(s.members, r)
				s.cost += s.costs[r]
				newJQ, err := s.objective(s.members)
				if err != nil {
					loopErr = err
					return
				}
				s.curJQ = newJQ
			} else if err := s.swap(r, temp); err != nil {
				loopErr = err
				return
			}
			if s.curJQ > bestJQ {
				bestJQ = s.curJQ
				bestMembers = append(bestMembers[:0], s.members...)
				bestCost = s.cost
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if loopErr != nil {
		return Result{}, loopErr
	}
	indices := sortedCopy(bestMembers)
	return Result{
		Jury:        pool.Subset(indices),
		Indices:     indices,
		JQ:          bestJQ,
		Cost:        bestCost,
		Evaluations: s.evals,
	}, nil
}

// swap implements Algorithm 4: exchange one selected worker against one
// unselected worker, accepting by the Boltzmann rule.
func (s *annealSearch) swap(r int, temp float64) error {
	n := len(s.selected)
	var out, in int // out leaves the jury, in enters
	if !s.selected[r] {
		if len(s.members) == 0 {
			return nil // nothing to swap against
		}
		out = s.members[s.rng.Intn(len(s.members))]
		in = r
	} else {
		free := n - len(s.members)
		if free == 0 {
			return nil // everyone is already selected
		}
		pick := s.rng.Intn(free)
		in = -1
		for i := 0; i < n; i++ {
			if !s.selected[i] {
				if pick == 0 {
					in = i
					break
				}
				pick--
			}
		}
		out = r
	}
	newCost := s.cost - s.costs[out] + s.costs[in]
	candidate := s.spare[:0]
	for _, m := range s.members {
		if m != out {
			candidate = append(candidate, m)
		}
	}
	if newCost > s.budget {
		if !s.allowRemoval || !s.selected[out] {
			return nil
		}
		// Extension: fall back to removing `out` alone.
		newJQ, err := s.objective(candidate)
		if err != nil {
			return err
		}
		if anneal.Accept(newJQ-s.curJQ, temp, s.rng) {
			s.selected[out] = false
			s.members, s.spare = candidate, s.members
			s.cost -= s.costs[out]
			s.curJQ = newJQ
		}
		return nil
	}
	candidate = append(candidate, in)
	newJQ, err := s.objective(candidate)
	if err != nil {
		return err
	}
	if anneal.Accept(newJQ-s.curJQ, temp, s.rng) {
		s.selected[out] = false
		s.selected[in] = true
		s.members, s.spare = candidate, s.members
		s.cost = newCost
		s.curJQ = newJQ
	}
	return nil
}
