package selection

import (
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/worker"
)

// Annealing is the simulated-annealing JSP heuristic of Algorithm 3, with
// the add-or-swap local search of Algorithm 4. The state is the selection
// vector X over the N candidates; at each of the N local searches per
// temperature level a random candidate r is drawn and either added (when it
// fits the remaining budget) or swapped against a random member/non-member,
// accepting worsening swaps with Boltzmann probability exp(Δ/T).
//
// Unlike the paper's pseudo-code, the best jury seen across the whole run
// is returned rather than the final state; this never hurts and makes the
// returned quality monotone in the number of iterations.
type Annealing struct {
	Objective Objective
	// Schedule defaults to anneal.DefaultSchedule() when zero.
	Schedule anneal.Schedule
	// Seed makes runs reproducible. Two selectors with equal seeds and
	// inputs return identical juries.
	Seed int64
	// Restarts runs the annealing loop multiple times (fresh random state,
	// derived seeds) and keeps the best jury. Zero means 1.
	Restarts int
	// AllowRemoval extends Algorithm 4 with a pure removal move: when the
	// chosen swap is infeasible (it would exceed the budget), the member
	// that would have left the jury may be removed outright, accepted by
	// the same Boltzmann rule. Removals typically lower JQ (Lemma 1), so
	// they fire mostly at high temperature — but they let the search
	// escape juries packed with cheap workers that block every single
	// swap toward an expensive high-quality worker. This is an extension
	// over the paper's algorithm and is off by default.
	AllowRemoval bool
}

// Name implements Selector.
func (a Annealing) Name() string { return "anneal(" + a.Objective.Name() + ")" }

// Select implements Selector.
func (a Annealing) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	schedule := a.Schedule
	if schedule == (anneal.Schedule{}) {
		schedule = anneal.DefaultSchedule()
	}
	if err := schedule.Validate(); err != nil {
		return Result{}, err
	}
	restarts := a.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var best Result
	bestSet := false
	evals := 0
	for r := 0; r < restarts; r++ {
		rng := rand.New(rand.NewSource(a.Seed + int64(r)*0x9E3779B9))
		res, err := a.run(pool, budget, alpha, schedule, rng)
		if err != nil {
			return Result{}, err
		}
		evals += res.Evaluations
		if !bestSet || res.JQ > best.JQ {
			best = res
			bestSet = true
		}
	}
	best.Evaluations = evals
	return best, nil
}

// run executes one annealing pass (Algorithm 3).
func (a Annealing) run(pool worker.Pool, budget, alpha float64, schedule anneal.Schedule, rng *rand.Rand) (Result, error) {
	n := len(pool)
	costs := pool.Costs()

	selected := make([]bool, n) // X
	members := make([]int, 0, n)
	var cost float64 // M
	evals := 0

	objective := func(indices []int) (float64, error) {
		evals++
		return a.Objective.JQ(pool.Subset(indices), alpha)
	}

	curJQ, err := objective(members)
	if err != nil {
		return Result{}, err
	}
	bestJQ := curJQ
	bestMembers := append([]int(nil), members...)
	bestCost := cost

	var loopErr error
	_, err = anneal.Run(schedule, func(temp float64) {
		if loopErr != nil {
			return
		}
		for step := 0; step < n; step++ {
			r := rng.Intn(n)
			if !selected[r] && cost+costs[r] <= budget {
				// Add r (Algorithm 3, steps 9–11).
				selected[r] = true
				members = append(members, r)
				cost += costs[r]
				newJQ, err := objective(members)
				if err != nil {
					loopErr = err
					return
				}
				curJQ = newJQ
			} else if err := a.swap(pool, budget, alpha, selected, &members, &cost, &curJQ, r, temp, rng, &evals); err != nil {
				loopErr = err
				return
			}
			if curJQ > bestJQ {
				bestJQ = curJQ
				bestMembers = append(bestMembers[:0], members...)
				bestCost = cost
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if loopErr != nil {
		return Result{}, loopErr
	}
	indices := sortedCopy(bestMembers)
	return Result{
		Jury:        pool.Subset(indices),
		Indices:     indices,
		JQ:          bestJQ,
		Cost:        bestCost,
		Evaluations: evals,
	}, nil
}

// swap implements Algorithm 4: exchange one selected worker against one
// unselected worker, accepting by the Boltzmann rule.
func (a Annealing) swap(pool worker.Pool, budget, alpha float64, selected []bool, members *[]int, cost, curJQ *float64, r int, temp float64, rng *rand.Rand, evals *int) error {
	n := len(pool)
	var out, in int // out leaves the jury, in enters
	if !selected[r] {
		if len(*members) == 0 {
			return nil // nothing to swap against
		}
		out = (*members)[rng.Intn(len(*members))]
		in = r
	} else {
		free := n - len(*members)
		if free == 0 {
			return nil // everyone is already selected
		}
		pick := rng.Intn(free)
		in = -1
		for i := 0; i < n; i++ {
			if !selected[i] {
				if pick == 0 {
					in = i
					break
				}
				pick--
			}
		}
		out = r
	}
	costs := pool.Costs()
	newCost := *cost - costs[out] + costs[in]
	candidate := make([]int, 0, len(*members))
	for _, m := range *members {
		if m != out {
			candidate = append(candidate, m)
		}
	}
	if newCost > budget {
		if !a.AllowRemoval || !selected[out] {
			return nil
		}
		// Extension: fall back to removing `out` alone.
		*evals++
		newJQ, err := a.Objective.JQ(pool.Subset(candidate), alpha)
		if err != nil {
			return err
		}
		if anneal.Accept(newJQ-*curJQ, temp, rng) {
			selected[out] = false
			*members = candidate
			*cost -= costs[out]
			*curJQ = newJQ
		}
		return nil
	}
	candidate = append(candidate, in)
	*evals++
	newJQ, err := a.Objective.JQ(pool.Subset(candidate), alpha)
	if err != nil {
		return err
	}
	if anneal.Accept(newJQ-*curJQ, temp, rng) {
		selected[out] = false
		selected[in] = true
		*members = candidate
		*cost = newCost
		*curJQ = newJQ
	}
	return nil
}
