package selection

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/worker"
)

func evalTestPool(t *testing.T, seed int64, n int) worker.Pool {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.N = n
	pool, err := gen.Pool(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// The evaluator-based exhaustive search must return exactly the jury a
// direct enumeration with the plain objective picks: both evaluate
// canonical ascending subsets, so even the tie-breaks coincide.
func TestExhaustiveEvaluatorMatchesDirectEnumeration(t *testing.T) {
	pool := evalTestPool(t, 51, 10)
	for _, obj := range []Objective{BVExactObjective{}, MVObjective{}, BVObjective{}} {
		got, err := Exhaustive{Objective: obj}.Select(pool, 0.3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		costs := pool.Costs()
		best := Result{JQ: -1, Indices: []int{}}
		for mask := 0; mask < 1<<len(pool); mask++ {
			var cost float64
			var indices []int
			for i := 0; i < len(pool); i++ {
				if mask&(1<<i) != 0 {
					cost += costs[i]
					indices = append(indices, i)
				}
			}
			if cost > 0.3 {
				continue
			}
			var score float64
			var err error
			if len(indices) == 0 {
				score = 0.5
			} else {
				score, err = obj.JQ(pool.Subset(indices), 0.5)
				if err != nil {
					t.Fatal(err)
				}
			}
			if better(score, cost, indices, best) {
				best = Result{Indices: append([]int(nil), indices...), JQ: score, Cost: cost}
			}
		}
		if got.JQ != best.JQ || !reflect.DeepEqual(got.Indices, best.Indices) {
			t.Fatalf("%s: evaluator path picked %v (JQ=%v), direct enumeration %v (JQ=%v)",
				obj.Name(), got.Indices, got.JQ, best.Indices, best.JQ)
		}
	}
}

// plainObjective hides the EvaluatorProvider of an objective (interface
// embedding promotes only Name and JQ), forcing the search down the
// generic fallback adapter.
type plainObjective struct{ Objective }

// The fast path and the fallback adapter must drive the annealing search
// to the same jury: evaluations are bit-identical on canonical subsets,
// and the MV/BV-exact objectives are order-invariant, so the whole
// random trajectory coincides.
func TestAnnealingEvaluatorMatchesFallback(t *testing.T) {
	pool := evalTestPool(t, 52, 24)
	for _, obj := range []Objective{MVObjective{}, BVExactObjective{}} {
		fast, err := Annealing{Objective: obj, Seed: 9}.Select(pool, 0.3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Annealing{Objective: plainObjective{obj}, Seed: 9}.Select(pool, 0.3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast.Indices, slow.Indices) || math.Abs(fast.JQ-slow.JQ) > 1e-12 {
			t.Fatalf("%s: fast path %v (JQ=%v) != fallback %v (JQ=%v)",
				obj.Name(), fast.Indices, fast.JQ, slow.Indices, slow.JQ)
		}
		if fast.Evaluations != slow.Evaluations {
			t.Fatalf("%s: evaluation counts diverged: %d vs %d",
				obj.Name(), fast.Evaluations, slow.Evaluations)
		}
	}
}

// Parallel restarts must be invisible: the folded result equals running
// each restart as its own single-pass selector and keeping the first
// best, bit for bit, and repeated Selects are identical.
func TestAnnealingParallelRestartsDeterministic(t *testing.T) {
	pool := evalTestPool(t, 53, 30)
	const restarts = 4
	sel := Annealing{Objective: BVObjective{}, Seed: 17, Restarts: restarts, AllowRemoval: true}
	got, err := sel.Select(pool, 0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sel.Select(pool, 0.4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("repeated Select differs:\n%+v\n%+v", got, again)
	}
	// Reference: sequential fold over single-restart runs on the derived
	// seeds.
	var want Result
	wantSet := false
	evals := 0
	for r := 0; r < restarts; r++ {
		single := Annealing{
			Objective:    BVObjective{},
			Seed:         17 + int64(r)*restartSeedStride,
			AllowRemoval: true,
		}
		res, err := single.Select(pool, 0.4, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		evals += res.Evaluations
		if !wantSet || res.JQ > want.JQ {
			want = res
			wantSet = true
		}
	}
	want.Evaluations = evals
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel restarts diverge from sequential fold:\n got %+v\nwant %+v", got, want)
	}
}

// The BV estimator's memo must be exercised by a real annealing run —
// the whole point of the engine is that revisited juries are free.
func TestAnnealingHitsEstimatorMemo(t *testing.T) {
	pool := evalTestPool(t, 54, 30)
	est, err := jq.NewEstimator(pool, 0.5, jq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := &bvEvaluator{est: est, alpha: 0.5}
	s := &annealSearch{
		costs:    pool.Costs(),
		eval:     eval,
		budget:   0.4,
		rng:      rand.New(rand.NewSource(3)),
		selected: make([]bool, len(pool)),
		members:  make([]int, 0, len(pool)),
		spare:    make([]int, 0, len(pool)),
	}
	if s.curJQ, err = s.objective(s.members); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4000; step++ {
		r := s.rng.Intn(len(pool))
		if !s.selected[r] && s.cost+s.costs[r] <= s.budget {
			s.selected[r] = true
			s.members = append(s.members, r)
			s.cost += s.costs[r]
			if s.curJQ, err = s.objective(s.members); err != nil {
				t.Fatal(err)
			}
		} else if err := s.swap(r, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	stats := est.Stats()
	if stats.Hits == 0 {
		t.Fatalf("annealing-shaped workload produced no memo hits: %+v", stats)
	}
}
