// Package selection solves the Jury Selection Problem (JSP) of Zheng et al.
// (EDBT 2015, Section 5): given a candidate pool, a budget B, and a prior α,
// find the jury J with ΣcostJ ≤ B maximizing JQ(J, S, α).
//
// The package separates the search (Selector) from the quality model
// (Objective), so the paper's OPTJS system (Bayesian-Voting objective) and
// the MVJS baseline of Cao et al. [7] (Majority-Voting objective) share the
// same search machinery — which is exactly how the paper's end-to-end
// comparison (Figures 6 and 10) is defined.
package selection

import (
	"fmt"
	"math"

	"repro/internal/jq"
	"repro/internal/worker"
)

// Objective scores a candidate jury. Implementations must be deterministic:
// the annealing search evaluates juries repeatedly and compares the scores.
type Objective interface {
	// Name identifies the objective ("BV", "BV-exact", "MV", ...).
	Name() string
	// JQ returns the jury quality of jury under the objective's voting
	// strategy and the given prior. An empty jury is legal: the task
	// provider answers from the prior alone, so its quality is
	// max(α, 1−α).
	JQ(jury worker.Pool, alpha float64) (float64, error)
}

// priorOnlyJQ is the quality of an empty jury: the Bayesian answer from the
// prior alone is correct with probability max(α, 1−α); MV has no votes to
// count and degenerates the same way.
func priorOnlyJQ(alpha float64) float64 { return math.Max(alpha, 1-alpha) }

// Evaluator is the index-based fast path of an Objective: built once per
// (candidate pool, prior), it scores juries given as index slices into
// that pool without materializing worker.Pool subsets or redoing the
// per-pool setup (validation, normalization, log-odds) on every call.
// Indices may arrive in any order; a duplicated index counts as two
// jury members, exactly as Pool.Subset would materialize it. An empty
// slice scores the empty jury, max(α, 1−α).
//
// Evaluators own scratch state and are NOT safe for concurrent use; a
// search running in parallel must build one evaluator per goroutine.
type Evaluator interface {
	// Name identifies the underlying objective.
	Name() string
	// Eval scores the jury identified by indices into the candidate pool.
	Eval(indices []int) (float64, error)
}

// EvaluatorProvider is implemented by objectives that can build such an
// engine. Objectives without it fall back to a generic adapter that
// materializes each subset (into a reused buffer) and calls JQ.
type EvaluatorProvider interface {
	NewEvaluator(pool worker.Pool, alpha float64) (Evaluator, error)
}

// newEvaluator returns the objective's fast evaluator when it provides
// one, and the generic adapter otherwise.
func newEvaluator(obj Objective, pool worker.Pool, alpha float64) (Evaluator, error) {
	if p, ok := obj.(EvaluatorProvider); ok {
		return p.NewEvaluator(pool, alpha)
	}
	return &fallbackEvaluator{obj: obj, pool: pool, alpha: alpha}, nil
}

// fallbackEvaluator adapts a plain Objective: each call materializes the
// subset into a reused buffer, which the objective must not retain.
type fallbackEvaluator struct {
	obj     Objective
	pool    worker.Pool
	alpha   float64
	scratch worker.Pool
}

func (f *fallbackEvaluator) Name() string { return f.obj.Name() }

func (f *fallbackEvaluator) Eval(indices []int) (float64, error) {
	f.scratch = f.pool.SubsetInto(f.scratch[:0], indices)
	return f.obj.JQ(f.scratch, f.alpha)
}

// bvEvaluator wraps the jq.Estimator engine as a selection Evaluator.
type bvEvaluator struct {
	est   *jq.Estimator
	alpha float64
}

func (e *bvEvaluator) Name() string { return "BV" }

func (e *bvEvaluator) Eval(indices []int) (float64, error) {
	if len(indices) == 0 {
		return priorOnlyJQ(e.alpha), nil
	}
	res, err := e.est.Eval(indices)
	if err != nil {
		return 0, err
	}
	return res.JQ, nil
}

// bvExactEvaluator wraps jq.ExactBVEvaluator.
type bvExactEvaluator struct {
	eval  *jq.ExactBVEvaluator
	alpha float64
}

func (e *bvExactEvaluator) Name() string { return "BV-exact" }

func (e *bvExactEvaluator) Eval(indices []int) (float64, error) {
	if len(indices) == 0 {
		return priorOnlyJQ(e.alpha), nil
	}
	return e.eval.Eval(indices)
}

// mvEvaluator wraps jq.MVEvaluator. Like MVObjective it scores non-empty
// juries at the baseline's fixed uniform prior and uses the caller's
// prior only for the empty jury.
type mvEvaluator struct {
	eval  *jq.MVEvaluator
	alpha float64
}

func (e *mvEvaluator) Name() string { return "MV" }

func (e *mvEvaluator) Eval(indices []int) (float64, error) {
	if len(indices) == 0 {
		return priorOnlyJQ(e.alpha), nil
	}
	return e.eval.Eval(indices)
}

// BVObjective scores juries with the bucket-approximated JQ under Bayesian
// Voting (Algorithm 1). This is the OPTJS objective.
type BVObjective struct {
	// NumBuckets configures jq.Estimate; zero means jq.DefaultNumBuckets.
	NumBuckets int
}

// Name implements Objective.
func (o BVObjective) Name() string { return "BV" }

// JQ implements Objective.
func (o BVObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	res, err := jq.Estimate(jury, alpha, jq.Options{NumBuckets: o.NumBuckets})
	if err != nil {
		return 0, err
	}
	return res.JQ, nil
}

// NewEvaluator implements EvaluatorProvider with a memoizing
// jq.Estimator built once for the pool.
func (o BVObjective) NewEvaluator(pool worker.Pool, alpha float64) (Evaluator, error) {
	est, err := jq.NewEstimator(pool, alpha, jq.Options{NumBuckets: o.NumBuckets})
	if err != nil {
		return nil, err
	}
	return &bvEvaluator{est: est, alpha: alpha}, nil
}

// BVExactObjective scores juries with the exact (exponential) JQ under
// Bayesian Voting. Only usable for juries up to jq.MaxExactJurySize; it is
// the reference objective for the Figure 7(a) optimality-gap experiment.
type BVExactObjective struct{}

// Name implements Objective.
func (BVExactObjective) Name() string { return "BV-exact" }

// JQ implements Objective.
func (BVExactObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	return jq.ExactBV(jury, alpha)
}

// NewEvaluator implements EvaluatorProvider.
func (BVExactObjective) NewEvaluator(pool worker.Pool, alpha float64) (Evaluator, error) {
	eval, err := jq.NewExactBVEvaluator(pool, alpha)
	if err != nil {
		return nil, err
	}
	return &bvExactEvaluator{eval: eval, alpha: alpha}, nil
}

// MVObjective scores juries with the closed-form JQ under Majority Voting —
// the objective of the MVJS baseline (Cao et al. [7]), which solves
// argmax JQ(J, MV, 0.5). Following the baseline, the prior passed to Select
// is used only for the empty jury; MV itself ignores it, and the paper's
// baseline fixes α = 0.5.
type MVObjective struct{}

// Name implements Objective.
func (MVObjective) Name() string { return "MV" }

// JQ implements Objective.
func (MVObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	return jq.MajorityClosedForm(jury, 0.5)
}

// NewEvaluator implements EvaluatorProvider with the delta-updating
// Poisson-binomial engine.
func (MVObjective) NewEvaluator(pool worker.Pool, alpha float64) (Evaluator, error) {
	eval, err := jq.NewMVEvaluator(pool, 0.5)
	if err != nil {
		return nil, err
	}
	return &mvEvaluator{eval: eval, alpha: alpha}, nil
}

// Result is the outcome of a jury selection.
type Result struct {
	// Jury is the selected jury (a subset of the candidate pool).
	Jury worker.Pool
	// Indices locates the jury members in the candidate pool, ascending.
	Indices []int
	// JQ is the selected jury's score under the selector's objective.
	JQ float64
	// Cost is the jury cost Σ c_i.
	Cost float64
	// Evaluations counts objective evaluations performed by the search.
	Evaluations int
}

// Selector searches the feasible juries for the best objective value.
type Selector interface {
	// Name identifies the selector, e.g. "exhaustive(BV)".
	Name() string
	// Select returns the best jury found within the budget.
	Select(pool worker.Pool, budget, alpha float64) (Result, error)
}

func checkSelectInput(pool worker.Pool, budget, alpha float64) error {
	if err := pool.Validate(); err != nil {
		return err
	}
	if budget < 0 || budget != budget {
		return fmt.Errorf("selection: negative budget %v", budget)
	}
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return fmt.Errorf("selection: prior %v outside [0, 1]", alpha)
	}
	return nil
}
