// Package selection solves the Jury Selection Problem (JSP) of Zheng et al.
// (EDBT 2015, Section 5): given a candidate pool, a budget B, and a prior α,
// find the jury J with ΣcostJ ≤ B maximizing JQ(J, S, α).
//
// The package separates the search (Selector) from the quality model
// (Objective), so the paper's OPTJS system (Bayesian-Voting objective) and
// the MVJS baseline of Cao et al. [7] (Majority-Voting objective) share the
// same search machinery — which is exactly how the paper's end-to-end
// comparison (Figures 6 and 10) is defined.
package selection

import (
	"fmt"
	"math"

	"repro/internal/jq"
	"repro/internal/worker"
)

// Objective scores a candidate jury. Implementations must be deterministic:
// the annealing search evaluates juries repeatedly and compares the scores.
type Objective interface {
	// Name identifies the objective ("BV", "BV-exact", "MV", ...).
	Name() string
	// JQ returns the jury quality of jury under the objective's voting
	// strategy and the given prior. An empty jury is legal: the task
	// provider answers from the prior alone, so its quality is
	// max(α, 1−α).
	JQ(jury worker.Pool, alpha float64) (float64, error)
}

// priorOnlyJQ is the quality of an empty jury: the Bayesian answer from the
// prior alone is correct with probability max(α, 1−α); MV has no votes to
// count and degenerates the same way.
func priorOnlyJQ(alpha float64) float64 { return math.Max(alpha, 1-alpha) }

// BVObjective scores juries with the bucket-approximated JQ under Bayesian
// Voting (Algorithm 1). This is the OPTJS objective.
type BVObjective struct {
	// NumBuckets configures jq.Estimate; zero means jq.DefaultNumBuckets.
	NumBuckets int
}

// Name implements Objective.
func (o BVObjective) Name() string { return "BV" }

// JQ implements Objective.
func (o BVObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	res, err := jq.Estimate(jury, alpha, jq.Options{NumBuckets: o.NumBuckets})
	if err != nil {
		return 0, err
	}
	return res.JQ, nil
}

// BVExactObjective scores juries with the exact (exponential) JQ under
// Bayesian Voting. Only usable for juries up to jq.MaxExactJurySize; it is
// the reference objective for the Figure 7(a) optimality-gap experiment.
type BVExactObjective struct{}

// Name implements Objective.
func (BVExactObjective) Name() string { return "BV-exact" }

// JQ implements Objective.
func (BVExactObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	return jq.ExactBV(jury, alpha)
}

// MVObjective scores juries with the closed-form JQ under Majority Voting —
// the objective of the MVJS baseline (Cao et al. [7]), which solves
// argmax JQ(J, MV, 0.5). Following the baseline, the prior passed to Select
// is used only for the empty jury; MV itself ignores it, and the paper's
// baseline fixes α = 0.5.
type MVObjective struct{}

// Name implements Objective.
func (MVObjective) Name() string { return "MV" }

// JQ implements Objective.
func (MVObjective) JQ(jury worker.Pool, alpha float64) (float64, error) {
	if len(jury) == 0 {
		return priorOnlyJQ(alpha), nil
	}
	return jq.MajorityClosedForm(jury, 0.5)
}

// Result is the outcome of a jury selection.
type Result struct {
	// Jury is the selected jury (a subset of the candidate pool).
	Jury worker.Pool
	// Indices locates the jury members in the candidate pool, ascending.
	Indices []int
	// JQ is the selected jury's score under the selector's objective.
	JQ float64
	// Cost is the jury cost Σ c_i.
	Cost float64
	// Evaluations counts objective evaluations performed by the search.
	Evaluations int
}

// Selector searches the feasible juries for the best objective value.
type Selector interface {
	// Name identifies the selector, e.g. "exhaustive(BV)".
	Name() string
	// Select returns the best jury found within the budget.
	Select(pool worker.Pool, budget, alpha float64) (Result, error)
}

func checkSelectInput(pool worker.Pool, budget, alpha float64) error {
	if err := pool.Validate(); err != nil {
		return err
	}
	if budget < 0 || budget != budget {
		return fmt.Errorf("selection: negative budget %v", budget)
	}
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return fmt.Errorf("selection: prior %v outside [0, 1]", alpha)
	}
	return nil
}
