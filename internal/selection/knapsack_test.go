package selection

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/worker"
)

func TestKnapsackSurrogateRespectsBudget(t *testing.T) {
	pool := figure1Pool()
	for _, budget := range []float64{0, 3, 7.5, 14, 20, 100} {
		res, err := KnapsackSurrogate{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if res.Cost > budget+1e-12 {
			t.Fatalf("budget %v: cost %v exceeds it", budget, res.Cost)
		}
	}
}

func TestKnapsackSurrogateZeroBudgetTakesFreeWorkers(t *testing.T) {
	pool := worker.Pool{
		{ID: "free", Quality: 0.8, Cost: 0},
		{ID: "paid", Quality: 0.9, Cost: 1},
	}
	res, err := KnapsackSurrogate{Objective: BVExactObjective{}}.Select(pool, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jury) != 1 || res.Jury[0].ID != "free" {
		t.Fatalf("jury = %v, want just the free worker", res.Jury)
	}
}

func TestKnapsackSurrogateNearOptimalOnFigure1(t *testing.T) {
	pool := figure1Pool()
	exact, err := Exhaustive{Objective: BVExactObjective{}}.Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := KnapsackSurrogate{Objective: BVExactObjective{}}.Select(pool, 15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if exact.JQ-heur.JQ > 0.02 {
		t.Fatalf("knapsack JQ %v too far below optimal %v", heur.JQ, exact.JQ)
	}
}

// Property: the surrogate never beats the exhaustive optimum, never busts
// the budget, and is deterministic.
func TestKnapsackSurrogateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		pool := make(worker.Pool, n)
		for i := range pool {
			cost := math.Abs(rng.NormFloat64()*0.2 + 0.05)
			if cost < 0.01 {
				cost = 0.01
			}
			pool[i] = worker.Worker{Quality: 0.5 + 0.45*rng.Float64(), Cost: cost}
		}
		budget := 0.05 + 0.45*rng.Float64()
		exact, err := Exhaustive{Objective: BVExactObjective{}}.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		k := KnapsackSurrogate{Objective: BVExactObjective{}}
		a, err := k.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		b, err := k.Select(pool, budget, 0.5)
		if err != nil {
			return false
		}
		if a.Cost > budget+1e-12 {
			return false
		}
		if a.JQ > exact.JQ+1e-9 {
			return false
		}
		if a.JQ != b.JQ || len(a.Indices) != len(b.Indices) {
			return false // determinism
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsackSurrogateValidation(t *testing.T) {
	if _, err := (KnapsackSurrogate{Objective: MVObjective{}}).Select(nil, 1, 0.5); err == nil {
		t.Error("no error for empty pool")
	}
	if _, err := (KnapsackSurrogate{Objective: MVObjective{}}).Select(figure1Pool(), -1, 0.5); err == nil {
		t.Error("no error for negative budget")
	}
}

func TestKnapsackSurrogateLowQualityWorkersCountByEvidence(t *testing.T) {
	// A q=0.1 worker carries φ(0.9) of evidence — the surrogate should
	// prefer them over a q=0.6 worker at equal cost.
	pool := worker.Pool{
		{ID: "inverse-expert", Quality: 0.1, Cost: 1},
		{ID: "mediocre", Quality: 0.6, Cost: 1},
	}
	res, err := KnapsackSurrogate{Objective: BVExactObjective{}}.Select(pool, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jury) != 1 || res.Jury[0].ID != "inverse-expert" {
		t.Fatalf("jury = %v, want the inverse expert", res.Jury)
	}
}
