package selection

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/worker"
)

// MaxExhaustiveN is the largest candidate pool the exhaustive selector
// accepts: 2^22 subsets is the practical ceiling for an interactive search.
const MaxExhaustiveN = 22

// ErrPoolTooLarge is returned when the exhaustive selector is given more
// candidates than MaxExhaustiveN.
var ErrPoolTooLarge = errors.New("selection: candidate pool too large for exhaustive search")

// Exhaustive enumerates every feasible jury and returns the one with the
// highest objective value. JSP is NP-hard (Theorem 4), so this is only
// viable for small pools; it serves as the ground truth the heuristics are
// measured against (Figure 7a, Table 3).
type Exhaustive struct {
	Objective Objective
}

// Name implements Selector.
func (e Exhaustive) Name() string { return "exhaustive(" + e.Objective.Name() + ")" }

// Select implements Selector. Ties between equal-JQ juries are broken
// toward the cheaper jury, then the lexicographically smallest index set,
// so results are deterministic.
func (e Exhaustive) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	n := len(pool)
	if n > MaxExhaustiveN {
		return Result{}, fmt.Errorf("%w: N=%d > %d", ErrPoolTooLarge, n, MaxExhaustiveN)
	}
	eval, err := newEvaluator(e.Objective, pool, alpha)
	if err != nil {
		return Result{}, err
	}
	costs := pool.Costs()
	best := Result{JQ: -1, Indices: []int{}}
	evals := 0
	indices := make([]int, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var cost float64
		indices = indices[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				cost += costs[i]
				indices = append(indices, i)
			}
		}
		if cost > budget {
			continue
		}
		score, err := eval.Eval(indices)
		if err != nil {
			return Result{}, err
		}
		evals++
		if better(score, cost, indices, best) {
			best = Result{
				Indices: append([]int(nil), indices...),
				JQ:      score,
				Cost:    cost,
			}
		}
	}
	best.Jury = pool.Subset(best.Indices)
	best.Evaluations = evals
	return best, nil
}

// better reports whether (score, cost, indices) improves on best, with the
// deterministic tie-break described on Select.
func better(score, cost float64, indices []int, best Result) bool {
	const eps = 1e-12
	switch {
	case score > best.JQ+eps:
		return true
	case score < best.JQ-eps:
		return false
	case cost < best.Cost-eps:
		return true
	case cost > best.Cost+eps:
		return false
	}
	return lexLess(indices, best.Indices)
}

// lexLess orders index sets lexicographically with shorter prefixes first.
func lexLess(a, b []int) bool {
	if b == nil {
		return true
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// sortedCopy returns a sorted copy of indices.
func sortedCopy(indices []int) []int {
	out := append([]int(nil), indices...)
	sort.Ints(out)
	return out
}
