package selection

import (
	"math"

	"repro/internal/worker"
)

// KnapsackSurrogate solves JSP approximately by replacing the
// (non-additive, NP-hard) JQ objective with an additive surrogate — each
// worker's Bayesian evidence weight φ(q) = ln(q/(1−q)) — and solving the
// resulting 0/1 knapsack exactly with the classic pseudo-polynomial DP
// over a discretized budget axis.
//
// The surrogate is principled: JQ is monotone in every worker's evidence,
// and for homogeneous-evidence votings the decision margin is exactly the
// φ-sum. It is NOT exact — JQ exhibits diminishing returns the surrogate
// ignores — which is precisely what the ablation experiments quantify.
// This selector is an extension over the paper (which uses simulated
// annealing); it is deterministic and fast: O(N · Resolution).
type KnapsackSurrogate struct {
	Objective Objective
	// Resolution is the number of integer ticks the budget is divided
	// into; 0 selects 1000. Worker costs are rounded *up* to ticks, so
	// the selected jury never exceeds the real budget.
	Resolution int
}

// Name implements Selector.
func (k KnapsackSurrogate) Name() string { return "knapsack(" + k.Objective.Name() + ")" }

// Select implements Selector.
func (k KnapsackSurrogate) Select(pool worker.Pool, budget, alpha float64) (Result, error) {
	if err := checkSelectInput(pool, budget, alpha); err != nil {
		return Result{}, err
	}
	resolution := k.Resolution
	if resolution == 0 {
		resolution = 1000
	}
	n := len(pool)

	// Integer weights: cost in budget ticks, rounded up. Zero-cost
	// workers weigh nothing and are always worth taking.
	weights := make([]int, n)
	values := make([]float64, n)
	for i, w := range pool {
		if budget > 0 {
			weights[i] = int(math.Ceil(w.Cost / budget * float64(resolution)))
		} else if w.Cost > 0 {
			weights[i] = resolution + 1 // unaffordable at zero budget
		}
		q := w.Quality
		if q < 0.5 {
			q = 1 - q
		}
		if q >= 1 {
			q = 1 - 1e-12
		}
		values[i] = math.Log(q / (1 - q))
	}

	// dp[w] = best surrogate value using ≤ w ticks; take[i][w] records the
	// decision for reconstruction.
	dp := make([]float64, resolution+1)
	reachable := make([]bool, resolution+1)
	reachable[0] = true
	take := make([][]bool, n)
	for i := 0; i < n; i++ {
		take[i] = make([]bool, resolution+1)
		wi, vi := weights[i], values[i]
		if wi > resolution {
			continue
		}
		for w := resolution; w >= wi; w-- {
			if !reachable[w-wi] {
				continue
			}
			if cand := dp[w-wi] + vi; !reachable[w] || cand > dp[w] {
				dp[w] = cand
				reachable[w] = true
				take[i][w] = true
			}
		}
	}
	bestW := 0
	for w := 0; w <= resolution; w++ {
		if reachable[w] && (dp[w] > dp[bestW] || !reachable[bestW]) {
			bestW = w
		}
	}
	// Reconstruct; iterate workers in reverse of the DP fill order.
	var chosen []int
	w := bestW
	for i := n - 1; i >= 0; i-- {
		if w >= weights[i] && take[i][w] {
			chosen = append(chosen, i)
			w -= weights[i]
		}
	}
	indices := sortedCopy(chosen)
	jury := pool.Subset(indices)
	score, err := k.Objective.JQ(jury, alpha)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Jury:        jury,
		Indices:     indices,
		JQ:          score,
		Cost:        jury.TotalCost(),
		Evaluations: 1,
	}, nil
}
