// Cross-module integration tests: each exercises a full pipeline the way a
// production deployment would compose the packages, rather than a single
// module in isolation.
package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/amt"
	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/multichoice"
	"repro/internal/quality"
	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/worker"
	"repro/jury"
	jonline "repro/jury/online"
)

// TestIntegrationColdStartPipeline runs the full cold-start story: a crowd
// answers a batch with NO known ground truth; Dawid–Skene EM recovers
// worker qualities and labels; jury selection then uses those qualities on
// fresh tasks, and the selected juries beat majority-selected ones.
func TestIntegrationColdStartPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, err := amt.Generate(amt.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: estimate qualities without any ground truth.
	em, err := quality.EM(ds.QualityDataset(), quality.EMOptions{FixedPrior: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !em.Converged {
		t.Fatal("EM did not converge on the corpus")
	}
	// EM labels should agree with the hidden truth almost always.
	correct := 0
	for i, task := range ds.Tasks {
		if em.Labels[i] == task.Truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(ds.Tasks)); acc < 0.95 {
		t.Fatalf("EM label accuracy = %v, want ≥ 0.95", acc)
	}

	// Phase 2: use EM qualities for selection + aggregation per task.
	const budget = 0.05
	bvCorrect := 0
	const sample = 150
	for q := 0; q < sample; q++ {
		task := ds.Tasks[q]
		pool := make(worker.Pool, len(task.Answers))
		for i, ans := range task.Answers {
			cost := rng.NormFloat64()*0.2 + 0.05
			if cost < 0.01 {
				cost = 0.01
			}
			pool[i] = worker.Worker{Quality: em.Qualities[ans.WorkerID], Cost: cost}
		}
		sel, err := selection.OPTJS(int64(q)).Select(pool, budget, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		votes := make([]voting.Vote, len(sel.Indices))
		quals := make([]float64, len(sel.Indices))
		for i, idx := range sel.Indices {
			votes[i] = task.Answers[idx].Vote
			quals[i] = pool[idx].Quality
		}
		if len(votes) == 0 {
			continue
		}
		dec, err := voting.Decide(voting.Bayesian{}, votes, quals, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dec == task.Truth {
			bvCorrect++
		}
	}
	if acc := float64(bvCorrect) / sample; acc < 0.85 {
		t.Fatalf("cold-start pipeline accuracy = %v, want ≥ 0.85", acc)
	}
}

// TestIntegrationOnlineVsOfflineSpend verifies the online collector reaches
// comparable accuracy to a committed jury while paying less on average.
func TestIntegrationOnlineVsOfflineSpend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	gen := datagen.DefaultConfig()
	gen.N = 20
	const budget = 0.5
	const trials = 150

	var onCorrect, offCorrect int
	var onSpend, offSpend float64
	for trial := 0; trial < trials; trial++ {
		pool, err := gen.Pool(rng)
		if err != nil {
			t.Fatal(err)
		}
		truth := datagen.Truth(0.5, rng)

		res, err := jonline.Collect(pool,
			jonline.SimulatedSource{Pool: pool, Truth: truth, Rng: rng},
			jonline.EvidencePerCost(),
			jonline.Config{Alpha: 0.5, Confidence: 0.97, Budget: budget}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == truth {
			onCorrect++
		}
		onSpend += res.Cost

		sel, err := jury.Select(pool, budget, jury.UniformPrior, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		votes := datagen.Votes(sel.Jury, truth, rng)
		dec, err := jury.Decide(jury.Bayesian(), votes, sel.Jury.Qualities(), 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dec == truth {
			offCorrect++
		}
		offSpend += sel.Cost
	}
	onAcc := float64(onCorrect) / trials
	offAcc := float64(offCorrect) / trials
	if onSpend >= offSpend {
		t.Fatalf("online spend %v not below offline %v", onSpend/trials, offSpend/trials)
	}
	if onAcc < offAcc-0.08 {
		t.Fatalf("online accuracy %v too far below offline %v", onAcc, offAcc)
	}
}

// TestIntegrationMultiChoiceLearnedModels runs the Section 7 pipeline with
// learned confusion matrices: simulate ℓ-ary answers, estimate matrices
// with EM, select a jury with the learned models, and verify the learned
// JQ estimate tracks the true-model JQ.
func TestIntegrationMultiChoiceLearnedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const labels = 3
	trueMatrices := make([]multichoice.ConfusionMatrix, 10)
	for i := range trueMatrices {
		m, err := multichoice.NewSymmetricConfusion(labels, 0.55+0.04*float64(i))
		if err != nil {
			t.Fatal(err)
		}
		trueMatrices[i] = m
	}
	// Simulate 300 tasks answered by all workers.
	d := quality.DatasetL{NumTasks: 300, NumWorkers: len(trueMatrices), Labels: labels}
	truths := make([]multichoice.Label, d.NumTasks)
	for task := range truths {
		truths[task] = multichoice.Label(rng.Intn(labels))
		for w, m := range trueMatrices {
			u := rng.Float64()
			var cum float64
			vote := multichoice.Label(labels - 1)
			for k, p := range m[truths[task]] {
				cum += p
				if u < cum {
					vote = multichoice.Label(k)
					break
				}
			}
			d.Responses = append(d.Responses, quality.ResponseL{Task: task, Worker: w, Vote: vote})
		}
	}
	em, err := quality.EMConfusion(d, quality.EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	learned := make(multichoice.Pool, len(em.Confusions))
	truePool := make(multichoice.Pool, len(trueMatrices))
	for i := range em.Confusions {
		learned[i] = multichoice.Worker{Confusion: em.Confusions[i], Cost: float64(i + 1)}
		truePool[i] = multichoice.Worker{Confusion: trueMatrices[i], Cost: float64(i + 1)}
	}
	prior := multichoice.UniformPrior(labels)
	sel, err := multichoice.SelectAnnealing(learned, 15, prior, multichoice.EstimateObjective(200), 5)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost > 15 {
		t.Fatalf("budget violated: %v", sel.Cost)
	}
	// Score the selected jury under the TRUE models: the learned-model
	// selection should still produce a good jury.
	trueJQ, err := multichoice.ExactBV(truePool.Subset(sel.Indices), prior)
	if err != nil {
		t.Fatal(err)
	}
	bestJQ, err := multichoice.SelectExhaustive(truePool, 15, prior, multichoice.ExactObjective)
	if err != nil {
		t.Fatal(err)
	}
	if bestJQ.JQ-trueJQ > 0.06 {
		t.Fatalf("learned-model jury scores %v under true models; optimum %v", trueJQ, bestJQ.JQ)
	}
}

// TestIntegrationEstimateConsistency cross-checks the three JQ evaluation
// paths — exact enumeration, bucket approximation, and Monte Carlo — on
// the same juries.
func TestIntegrationEstimateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	gen := datagen.DefaultConfig()
	gen.N = 12
	for trial := 0; trial < 5; trial++ {
		pool, err := gen.Pool(rng)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := jq.ExactBV(pool, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		est, err := jq.Estimate(pool, 0.5, jq.Options{NumBuckets: 200 * len(pool)})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := jq.MonteCarlo(pool, voting.Bayesian{}, 0.5, 100000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-est.JQ) > 0.0063 {
			t.Fatalf("estimate %v vs exact %v", est.JQ, exact)
		}
		if math.Abs(exact-mc) > 0.01 {
			t.Fatalf("monte carlo %v vs exact %v", mc, exact)
		}
	}
}
