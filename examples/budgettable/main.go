// Budget–quality table: the decision-support view of the Optimal Jury
// Selection System (paper Figure 1).
//
// A task provider rarely knows the right budget in advance. This example
// sweeps a range of budgets over a synthetic 30-worker marketplace and
// prints, for each budget, the best jury, its estimated quality, and what
// it actually costs — so the provider can see where extra money stops
// buying meaningful quality.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/datagen"
	"repro/internal/table"
	"repro/jury"
)

func main() {
	// A synthetic marketplace: 30 workers with quality ~ N(0.7, 0.05)
	// (the paper's Section 6.1.1 distribution) and a realistic pricing
	// model in which better workers charge more: cost grows with the
	// worker's informativeness plus noise.
	rng := rand.New(rand.NewSource(2024))
	gen := datagen.DefaultConfig()
	gen.N = 30
	qs, err := gen.Qualities(rng)
	if err != nil {
		log.Fatal(err)
	}
	pool := make(jury.Pool, len(qs))
	for i, q := range qs {
		cost := 0.1 + 2*(q-0.5) + 0.1*rng.NormFloat64()
		if cost < 0.05 {
			cost = 0.05
		}
		pool[i] = jury.Worker{ID: fmt.Sprintf("w%d", i), Quality: q, Cost: cost}
	}

	sys := jury.NewSystem(jury.UniformPrior, 7)
	budgets := []float64{0.3, 0.6, 1.0, 1.5, 2.5, 4.0, 6.0}
	rows, err := sys.BudgetQualityTable(pool, budgets)
	if err != nil {
		log.Fatal(err)
	}

	t := table.New("Budget–quality table (30 synthetic workers)",
		"budget", "jury size", "quality", "required", "marginal gain")
	prev := 0.0
	for i, row := range rows {
		gain := "-"
		if i > 0 {
			gain = fmt.Sprintf("%+.2f pp", 100*(row.JQ-prev))
		}
		t.AddRow(
			table.Float(row.Budget),
			table.Int(len(row.Jury)),
			table.Percent(row.JQ),
			table.Float(row.RequiredBudget),
			gain,
		)
		prev = row.JQ
	}
	fmt.Print(t.String())

	// Point out the knee of the curve: the first budget whose marginal
	// gain drops below one percentage point.
	for i := 1; i < len(rows); i++ {
		if rows[i].JQ-rows[i-1].JQ < 0.01 {
			fmt.Printf("\nbeyond a budget of %.2f the next step buys <1pp of quality —\n"+
				"a provider would likely stop around there.\n", rows[i-1].Budget)
			break
		}
	}

	// Show the chosen jury at the knee in detail.
	fmt.Println("\njury at budget 1.5:")
	for _, row := range rows {
		if row.Budget == 1.5 {
			ids := make([]string, len(row.Jury))
			for i, w := range row.Jury {
				ids[i] = fmt.Sprintf("%s(q=%.2f,c=%.3f)", w.ID, w.Quality, w.Cost)
			}
			fmt.Println("  " + strings.Join(ids, " "))
		}
	}
}
