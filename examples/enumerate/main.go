// Enumerate: the paper's Figure 2 worked example, reproduced cell by cell.
//
// For the three-worker jury with qualities 0.9, 0.6, 0.6 and a uniform
// prior, this prints every possible voting V ∈ {0,1}³ together with the
// joint probabilities P(V, t=0) and P(V, t=1), the decision of Majority
// Voting and of Bayesian Voting on that voting, and which probability mass
// each strategy banks. Summing the banked mass yields the Jury Quality:
// 79.2% for MV versus 90% for BV — the gap that motivates the whole paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/table"
	"repro/jury"
)

func main() {
	qualities := []float64{0.9, 0.6, 0.6}
	const alpha = 0.5

	t := table.New("Figure 2 — all votings of the jury (0.9, 0.6, 0.6), alpha = 0.5",
		"V", "P(V,t=0)", "P(V,t=1)", "MV", "BV", "MV banks", "BV banks")

	var jqMV, jqBV float64
	for mask := 0; mask < 8; mask++ {
		votes := make([]jury.Vote, 3)
		p0, p1 := alpha, 1-alpha
		for i := range votes {
			if mask&(1<<i) != 0 {
				votes[i] = jury.Yes
				p0 *= 1 - qualities[i]
				p1 *= qualities[i]
			} else {
				p0 *= qualities[i]
				p1 *= 1 - qualities[i]
			}
		}
		mv, err := jury.Decide(jury.Majority(), votes, qualities, alpha, nil)
		if err != nil {
			log.Fatal(err)
		}
		bv, err := jury.Decide(jury.Bayesian(), votes, qualities, alpha, nil)
		if err != nil {
			log.Fatal(err)
		}
		// A strategy "banks" the joint probability of the truth value it
		// picks: that is the mass that counts toward its JQ.
		mvBank := pick(mv, p0, p1)
		bvBank := pick(bv, p0, p1)
		jqMV += mvBank
		jqBV += bvBank
		t.AddRow(
			fmt.Sprintf("{%d,%d,%d}", bit(votes[0]), bit(votes[1]), bit(votes[2])),
			fmt.Sprintf("%.3f", p0),
			fmt.Sprintf("%.3f", p1),
			mv.String(), bv.String(),
			fmt.Sprintf("%.3f", mvBank),
			fmt.Sprintf("%.3f", bvBank),
		)
	}
	fmt.Print(t.String())
	fmt.Printf("\nJQ(MV) = %.1f%%   JQ(BV) = %.1f%%   (paper: 79.2%% vs 90%%)\n",
		100*jqMV, 100*jqBV)

	// The same numbers from the library's JQ evaluators.
	pool := jury.UniformCostPool(qualities, 1)
	exactMV, err := jury.JQ(pool, jury.Majority(), alpha)
	if err != nil {
		log.Fatal(err)
	}
	exactBV, err := jury.JQ(pool, jury.Bayesian(), alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library:  JQ(MV) = %.1f%%   JQ(BV) = %.1f%%\n", 100*exactMV, 100*exactBV)
}

func bit(v jury.Vote) int {
	if v == jury.Yes {
		return 1
	}
	return 0
}

func pick(decision jury.Vote, p0, p1 float64) float64 {
	if decision == jury.No {
		return p0
	}
	return p1
}
