// Multi-choice jury selection: the Section 7 extension in action.
//
// Tasks here have three answers (negative / neutral / positive sentiment)
// and workers are modeled by confusion matrices — a worker may be great at
// spotting negativity yet systematically confuse neutral with positive.
// The example shows why that matters: Bayesian voting exploits the
// *structure* of each worker's errors, which plurality voting cannot.
package main

import (
	"fmt"
	"log"

	"repro/jury/multi"
)

func main() {
	const (
		negative = multi.Label(0)
		neutral  = multi.Label(1)
		positive = multi.Label(2)
	)
	names := []string{"negative", "neutral", "positive"}

	// A worker who nails negativity but votes "positive" for most neutral
	// texts — a systematic, exploitable bias.
	biased := multi.ConfusionMatrix{
		{0.90, 0.05, 0.05}, // truth negative
		{0.10, 0.20, 0.70}, // truth neutral → usually votes positive!
		{0.05, 0.15, 0.80}, // truth positive
	}
	// Two ordinary workers, decent across the board.
	balanced1, err := multi.NewSymmetricConfusion(3, 0.70)
	if err != nil {
		log.Fatal(err)
	}
	balanced2, err := multi.NewSymmetricConfusion(3, 0.65)
	if err != nil {
		log.Fatal(err)
	}
	pool := multi.Pool{
		{ID: "biased", Confusion: biased, Cost: 2},
		{ID: "bal1", Confusion: balanced1, Cost: 3},
		{ID: "bal2", Confusion: balanced2, Cost: 2},
	}
	prior := multi.UniformPrior(3)

	// Quality of the full jury under both strategies.
	bv, err := multi.JQ(pool, multi.Bayesian(), prior)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := multi.JQ(pool, multi.Plurality(), prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-worker jury quality: Bayesian %.2f%%  vs  plurality %.2f%%\n\n", 100*bv, 100*pl)

	// A concrete voting: the biased worker says "positive", the balanced
	// workers split between neutral and positive. Plurality says positive;
	// Bayesian knows the biased worker's "positive" is weak evidence
	// against "neutral".
	votes := []multi.Label{positive, neutral, positive}
	bvProbs, err := multi.Bayesian().Probabilities(votes, pool, prior)
	if err != nil {
		log.Fatal(err)
	}
	plProbs, err := multi.Plurality().Probabilities(votes, pool, prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("votes: biased=positive, bal1=neutral, bal2=positive\n")
	fmt.Printf("  plurality decides: %s\n", names[argmax(plProbs)])
	fmt.Printf("  Bayesian decides:  %s\n\n", names[argmax(bvProbs)])

	// Jury selection under a budget: the annealing solver treats the
	// multi-choice JQ as a black box.
	bigger := append(multi.Pool{}, pool...)
	for i, q := range []float64{0.85, 0.75, 0.6, 0.55} {
		m, err := multi.NewSymmetricConfusion(3, q)
		if err != nil {
			log.Fatal(err)
		}
		bigger = append(bigger, multi.Worker{
			ID: fmt.Sprintf("extra%d", i), Confusion: m, Cost: float64(i + 1),
		})
	}
	res, err := multi.Select(bigger, 6, prior, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget 6: selected %d workers (cost %.0f) with estimated JQ %.2f%%\n",
		len(res.Jury), res.Cost, 100*res.JQ)
	for _, w := range res.Jury {
		fmt.Printf("  %s (cost %.0f)\n", w.ID, w.Cost)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
