// Online collection: stop paying as soon as you are sure.
//
// Offline jury selection commits a budget before seeing any vote. The
// online collector instead asks workers one at a time and stops the moment
// the Bayesian posterior clears a confidence threshold — on easy tasks
// after one or two votes, on contested tasks only after many. This example
// runs both modes over the same simulated tasks and compares accuracy and
// spend, then shows a single collection trace.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/jury"
	"repro/jury/online"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	gen := datagen.DefaultConfig()
	gen.N = 20
	const budget = 0.5
	const trials = 500

	var onCorrect, offCorrect int
	var onSpend, offSpend float64
	for trial := 0; trial < trials; trial++ {
		pool, err := gen.Pool(rng)
		if err != nil {
			log.Fatal(err)
		}
		truth := datagen.Truth(0.5, rng)

		// Online: sequential votes until 97% posterior confidence.
		res, err := online.Collect(pool,
			online.SimulatedSource{Pool: pool, Truth: truth, Rng: rng},
			online.EvidencePerCost(),
			online.Config{Alpha: 0.5, Confidence: 0.97, Budget: budget}, rng)
		if err != nil {
			log.Fatal(err)
		}
		if res.Decision == truth {
			onCorrect++
		}
		onSpend += res.Cost

		// Offline: the optimal jury for the full budget, all votes bought.
		sel, err := jury.Select(pool, budget, jury.UniformPrior, int64(trial))
		if err != nil {
			log.Fatal(err)
		}
		votes := datagen.Votes(sel.Jury, truth, rng)
		dec, err := jury.Decide(jury.Bayesian(), votes, sel.Jury.Qualities(), 0.5, nil)
		if err != nil {
			log.Fatal(err)
		}
		if dec == truth {
			offCorrect++
		}
		offSpend += sel.Cost
	}
	fmt.Printf("over %d tasks (budget cap %.2f):\n", trials, budget)
	fmt.Printf("  online  (stop at 97%% confidence): accuracy %.1f%%, mean spend %.4f\n",
		100*float64(onCorrect)/trials, onSpend/trials)
	fmt.Printf("  offline (full jury up front):      accuracy %.1f%%, mean spend %.4f\n\n",
		100*float64(offCorrect)/trials, offSpend/trials)

	// One collection trace in detail.
	pool, err := gen.Pool(rng)
	if err != nil {
		log.Fatal(err)
	}
	truth := datagen.Truth(0.5, rng)
	res, err := online.Collect(pool,
		online.SimulatedSource{Pool: pool, Truth: truth, Rng: rng},
		online.EvidencePerCost(),
		online.Config{Alpha: 0.5, Confidence: 0.97, Budget: budget}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace of one task (truth = %v):\n", truth)
	for i, idx := range res.Asked {
		w := pool[idx]
		fmt.Printf("  vote %d: worker %s (q=%.2f, c=%.3f) says %v\n",
			i+1, w.ID, w.Quality, w.Cost, res.Votes[i])
	}
	fmt.Printf("stopped: %v after %d votes, decision %v at %.1f%% confidence, spend %.4f\n",
		res.Stopped, len(res.Asked), res.Decision, 100*res.Confidence, res.Cost)
}
