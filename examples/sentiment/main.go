// Sentiment-analysis pipeline: the paper's real-data scenario end to end
// (Section 6.2), on the simulated AMT corpus.
//
// The pipeline mirrors a production crowdsourcing deployment:
//
//  1. a batch of binary sentiment questions is answered by a crowd
//     (simulated here with the published dataset statistics);
//  2. every worker's quality is estimated empirically from their answers;
//  3. for each new question, a jury is selected within a budget from the
//     workers available for it;
//  4. the jury's votes are aggregated with Bayesian Voting;
//  5. predictions are scored against the ground truth — and compared with
//     what majority voting over the same budget would have achieved.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/amt"
	"repro/jury"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// 1. Simulate the crowd corpus: 128 workers, 600 questions, 20 votes
	// each (the shape of the paper's AMT collection).
	ds, err := amt.Generate(amt.DefaultConfig(), rng)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("corpus: %d workers, %d questions; mean empirical quality %.2f\n",
		st.NumWorkers, st.NumTasks, st.MeanEmpiricalQuality)
	fmt.Printf("workers above 0.8: %d, below 0.6: %d\n\n", st.WorkersAbove80, st.WorkersBelow60)

	// 2–5. For a sample of questions: select a jury within the budget from
	// the 20 workers who answered it, aggregate their actual votes, score.
	const budget = 0.4
	const questions = 200
	bvCorrect, mvCorrect := 0, 0
	var jurySizes int
	for q := 0; q < questions; q++ {
		pool, err := ds.TaskPool(q, 0.05, 0.2, rng)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := jury.Select(pool, budget, jury.UniformPrior, int64(q))
		if err != nil {
			log.Fatal(err)
		}
		jurySizes += len(sel.Jury)

		// Look up the selected workers' actual votes on this question.
		votes, quals := actualVotes(ds, q, sel)
		if len(votes) == 0 {
			continue
		}
		decision, err := jury.Decide(jury.Bayesian(), votes, quals, jury.UniformPrior, nil)
		if err != nil {
			log.Fatal(err)
		}
		if decision == ds.Tasks[q].Truth {
			bvCorrect++
		}
		// Baseline: same budget, jury chosen and aggregated under MV.
		mvSel, err := jury.SelectMajority(pool, budget, jury.UniformPrior, int64(q))
		if err != nil {
			log.Fatal(err)
		}
		mvVotes, mvQuals := actualVotes(ds, q, mvSel)
		mvDecision, err := jury.Decide(jury.Majority(), mvVotes, mvQuals, jury.UniformPrior, nil)
		if err != nil {
			log.Fatal(err)
		}
		if mvDecision == ds.Tasks[q].Truth {
			mvCorrect++
		}
	}
	fmt.Printf("budget %.2f, %d questions, mean jury size %.1f\n",
		budget, questions, float64(jurySizes)/questions)
	fmt.Printf("optimal system accuracy (BV):   %.1f%%\n", 100*float64(bvCorrect)/questions)
	fmt.Printf("majority baseline accuracy (MV): %.1f%%\n", 100*float64(mvCorrect)/questions)
}

// actualVotes returns the recorded votes of the selected jury members on
// question q, with their empirical qualities.
func actualVotes(ds *amt.Dataset, q int, sel jury.Selection) ([]jury.Vote, []float64) {
	byID := map[string]jury.Vote{}
	for _, ans := range ds.Tasks[q].Answers {
		byID[fmt.Sprintf("w%d", ans.WorkerID)] = ans.Vote
	}
	var votes []jury.Vote
	var quals []float64
	for _, w := range sel.Jury {
		if v, ok := byID[w.ID]; ok {
			votes = append(votes, v)
			quals = append(quals, w.Quality)
		}
	}
	return votes, quals
}
