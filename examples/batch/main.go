// Batch allocation: one purse, many questions.
//
// The paper selects a jury per task under a per-task budget. In a real
// deployment the provider holds one global budget for a whole batch of
// questions, and the questions differ: some have strong candidate pools or
// near-decided priors, others are genuinely hard. This example compares
// three ways of splitting a global budget — evenly, by prior uncertainty,
// and by greedy marginal gain — over a heterogeneous batch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/table"
	"repro/jury"
	"repro/jury/batch"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// A batch of six questions with uneven pools and priors.
	var tasks []batch.Task
	for i := 0; i < 6; i++ {
		gen := datagen.DefaultConfig()
		gen.N = 12
		gen.MeanQuality = 0.55 + 0.07*float64(i) // pools improve across tasks
		pool, err := gen.Pool(rng)
		if err != nil {
			log.Fatal(err)
		}
		alpha := jury.UniformPrior
		if i >= 4 {
			alpha = 0.9 // the provider already leans strongly on two tasks
		}
		tasks = append(tasks, batch.Task{
			Name: fmt.Sprintf("q%d", i), Pool: pool, Alpha: alpha,
		})
	}

	const budget = 0.3
	allocators := []batch.Allocator{
		batch.Even(),
		batch.WeightedByPrior(),
		batch.GreedyMarginal(18),
	}
	t := table.New(fmt.Sprintf("Global budget %.2f over %d questions", budget, len(tasks)),
		"allocator", "mean JQ", "spent", "per-task budgets")
	for _, a := range allocators {
		res, err := a.Allocate(tasks, budget, 1)
		if err != nil {
			log.Fatal(err)
		}
		perTask := ""
		for i, alloc := range res.Allocations {
			if i > 0 {
				perTask += " "
			}
			perTask += fmt.Sprintf("%.3f", alloc.Budget)
		}
		t.AddRow(a.Name(), table.Percent(res.MeanJQ), fmt.Sprintf("%.3f", res.SpentBudget), perTask)
	}
	fmt.Print(t.String())
	fmt.Println("\nnote how the greedy allocator starves the near-decided questions")
	fmt.Println("(q4, q5) and pours budget into the hardest pool (q0); which split")
	fmt.Println("wins on mean JQ depends on how heterogeneous the batch is — see")
	fmt.Println("the extension-batch experiment for a systematic sweep.")
}
