// Quickstart: select the best jury for a budget, collect their votes, and
// aggregate them with the optimal (Bayesian) voting strategy.
//
// This walks the paper's running example (Figure 1): seven candidate
// workers A–G, a decision-making task ("Is Bill Gates now the CEO of
// Microsoft?"), and a budget of 15 units.
package main

import (
	"fmt"
	"log"

	"repro/jury"
)

func main() {
	// Seven candidate workers with (quality, cost): the probability of
	// answering correctly, and the payment they require per vote.
	pool := jury.Pool{
		{ID: "A", Quality: 0.77, Cost: 9},
		{ID: "B", Quality: 0.70, Cost: 5},
		{ID: "C", Quality: 0.80, Cost: 6},
		{ID: "D", Quality: 0.65, Cost: 7},
		{ID: "E", Quality: 0.60, Cost: 5},
		{ID: "F", Quality: 0.60, Cost: 2},
		{ID: "G", Quality: 0.75, Cost: 3},
	}

	// 1. Solve the Jury Selection Problem for a budget of 15 units.
	res, err := jury.Select(pool, 15, jury.UniformPrior, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected jury: %v\n", res.Jury)
	fmt.Printf("estimated quality: %.2f%%, cost: %.0f units\n\n", 100*res.JQ, res.Cost)

	// 2. The jury votes. Suppose B and G vote "yes", C votes "no".
	votes := []jury.Vote{jury.Yes, jury.No, jury.Yes}
	qualities := res.Jury.Qualities()

	// 3. Aggregate with Bayesian Voting — the provably optimal strategy.
	decision, err := jury.Decide(jury.Bayesian(), votes, qualities, jury.UniformPrior, nil)
	if err != nil {
		log.Fatal(err)
	}
	confidence, err := jury.Confidence(votes, qualities, jury.UniformPrior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: %v (posterior confidence %.1f%%)\n\n", decision, 100*confidence)

	// 4. Compare: majority voting on the same votes ignores qualities.
	mvDecision, err := jury.Decide(jury.Majority(), votes, qualities, jury.UniformPrior, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority voting would have said: %v\n", mvDecision)

	// 5. Quantify the gap: exact JQ of both strategies on this jury.
	bvJQ, err := jury.JQ(res.Jury, jury.Bayesian(), jury.UniformPrior)
	if err != nil {
		log.Fatal(err)
	}
	mvJQ, err := jury.JQ(res.Jury, jury.Majority(), jury.UniformPrior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JQ under BV: %.2f%%  |  JQ under MV: %.2f%%\n", 100*bvJQ, 100*mvJQ)
}
