package jury_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/jury"
)

func figure1Pool() jury.Pool {
	return jury.NewPool(
		[]float64{0.77, 0.70, 0.80, 0.65, 0.60, 0.60, 0.75},
		[]float64{9, 5, 6, 7, 5, 2, 3},
	)
}

func TestPublicQuickstartFlow(t *testing.T) {
	pool := figure1Pool()
	res, err := jury.Select(pool, 15, jury.UniformPrior, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 15 {
		t.Fatalf("cost %v exceeds budget", res.Cost)
	}
	if math.Abs(res.JQ-0.845) > 0.005 {
		t.Fatalf("JQ = %v, want ≈0.845", res.JQ)
	}
	// Aggregate some votes with the optimal strategy.
	votes := []jury.Vote{jury.No, jury.Yes, jury.No}
	quals := res.Jury.Qualities()
	decision, err := jury.Decide(jury.Bayesian(), votes, quals, jury.UniformPrior, nil)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := jury.Confidence(votes, quals, jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	if decision != jury.No && decision != jury.Yes {
		t.Fatalf("decision = %v", decision)
	}
	if conf < 0.5 || conf > 1 {
		t.Fatalf("confidence = %v, want in [0.5, 1]", conf)
	}
}

func TestPublicJQMatchesPaperExample(t *testing.T) {
	j := jury.UniformCostPool([]float64{0.9, 0.6, 0.6}, 1)
	bv, err := jury.JQ(j, jury.Bayesian(), jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := jury.JQ(j, jury.Majority(), jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bv-0.9) > 1e-12 || math.Abs(mv-0.792) > 1e-12 {
		t.Fatalf("JQ(BV) = %v, JQ(MV) = %v; want 0.90 / 0.792", bv, mv)
	}
}

func TestPublicEstimateJQ(t *testing.T) {
	j := jury.UniformCostPool([]float64{0.9, 0.6, 0.6}, 1)
	est, err := jury.EstimateJQ(j, jury.UniformPrior, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.JQ-0.9) > 0.005 {
		t.Fatalf("estimate = %v, want ≈0.90", est.JQ)
	}
	if est.JQ > 0.9+1e-9 {
		t.Fatalf("estimate %v exceeds the true JQ", est.JQ)
	}
}

func TestPublicSelectDominatesMajorityBaseline(t *testing.T) {
	pool := figure1Pool()
	opt, err := jury.Select(pool, 15, jury.UniformPrior, 1)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := jury.SelectMajority(pool, 15, jury.UniformPrior, 1)
	if err != nil {
		t.Fatal(err)
	}
	optTrue, err := jury.JQ(opt.Jury, jury.Bayesian(), jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	mvTrue, err := jury.JQ(mv.Jury, jury.Bayesian(), jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	if optTrue < mvTrue-1e-9 {
		t.Fatalf("Select (%v) below SelectMajority (%v) under BV", optTrue, mvTrue)
	}
}

func TestPublicSelectors(t *testing.T) {
	pool := figure1Pool()
	for _, sel := range []jury.Selector{
		jury.NewExhaustive(),
		jury.NewExhaustiveExact(),
		jury.NewAnnealing(3),
		jury.NewGreedyQuality(),
	} {
		res, err := sel.Select(pool, 12, jury.UniformPrior)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if res.Cost > 12 {
			t.Fatalf("%s: cost %v over budget", sel.Name(), res.Cost)
		}
	}
}

func TestPublicSystemBudgetQualityTable(t *testing.T) {
	sys := jury.NewSystem(jury.UniformPrior, 1)
	rows, err := sys.BudgetQualityTable(figure1Pool(), []float64{5, 10, 15, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].JQ < rows[i-1].JQ-1e-9 {
			t.Fatal("budget–quality table not monotone")
		}
	}
}

func TestPublicStrategiesList(t *testing.T) {
	if len(jury.Strategies()) < 6 {
		t.Fatalf("Strategies() returned %d entries", len(jury.Strategies()))
	}
}

func TestPublicRandomizedDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	votes := []jury.Vote{jury.No, jury.Yes}
	quals := []float64{0.7, 0.7}
	if _, err := jury.Decide(jury.RandomBallot(), votes, quals, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := jury.Decide(jury.RandomizedMajority(), votes, quals, 0.5, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := jury.Decide(jury.TriadicConsensus(0), votes, quals, 0.5, rng); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExactJQIterative(t *testing.T) {
	// A 101-worker homogeneous jury: exact at a size the 2^n path refuses.
	qs := make([]float64, 101)
	for i := range qs {
		qs[i] = 0.6
	}
	j := jury.UniformCostPool(qs, 1)
	got, err := jury.ExactJQIterative(j, jury.UniformPrior)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.97 || got > 1 {
		t.Fatalf("JQ = %v, want ≈0.98 (Condorcet at n=101, q=0.6)", got)
	}
	if _, err := jury.JQ(j, jury.Bayesian(), jury.UniformPrior); err == nil {
		t.Fatal("the exponential path should refuse n=101")
	}
}
