package online_test

import (
	"fmt"

	"repro/jury"
	"repro/jury/online"
)

func ExampleCollect() {
	// Three workers; their votes are already recorded. Collection stops
	// after the expert's vote pushes the posterior past 94%.
	pool := jury.NewPool([]float64{0.95, 0.7, 0.6}, []float64{2, 1, 1})
	src := online.RecordedSource{Votes: []jury.Vote{jury.No, jury.Yes, jury.No}}
	res, err := online.Collect(pool, src, online.QualityFirst(),
		online.Config{Alpha: 0.5, Confidence: 0.94}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("decision=%v votes=%d stopped=%v\n", res.Decision, len(res.Asked), res.Stopped)
	// Output: decision=no votes=1 stopped=confident
}
