package online_test

import (
	"math/rand"
	"testing"

	"repro/internal/voting"
	"repro/jury"
	"repro/jury/online"
)

func TestPublicOnlineCollect(t *testing.T) {
	pool := jury.NewPool([]float64{0.95, 0.7, 0.6}, []float64{2, 1, 0.5})
	rng := rand.New(rand.NewSource(1))
	src := online.SimulatedSource{Pool: pool, Truth: voting.No, Rng: rng}
	res, err := online.Collect(pool, src, online.EvidencePerCost(),
		online.Config{Alpha: 0.5, Confidence: 0.9, Budget: 3.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 3.5 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
	if len(res.Asked) == 0 && res.Stopped != online.StopConfident {
		t.Fatalf("no votes collected but not confident: %+v", res)
	}
}

func TestPublicPolicies(t *testing.T) {
	pool := jury.NewPool([]float64{0.9, 0.6}, []float64{3, 1})
	rng := rand.New(rand.NewSource(2))
	for _, p := range []online.Policy{
		online.QualityFirst(), online.CheapestFirst(),
		online.EvidencePerCost(), online.RandomOrder(),
	} {
		order := p.Order(pool, rng)
		if len(order) != 2 {
			t.Fatalf("%s: order = %v", p.Name(), order)
		}
	}
}
