// Package online exposes sequential (quality-sensitive) vote collection:
// instead of pre-committing a jury, workers are asked one at a time and
// collection stops as soon as the Bayesian posterior reaches a confidence
// threshold — or the budget runs out. This is the online-processing
// counterpart of jury.Select (cf. the paper's Section 8 discussion of CDAS
// [25]); on typical pools it reaches the same accuracy for a fraction of
// the spend (see the extension-online experiment).
package online

import (
	"math/rand"

	"repro/internal/online"
	"repro/internal/worker"
)

// Config controls the stopping rule: the prior, the posterior-confidence
// threshold, and optional budget / vote-count caps.
type Config = online.Config

// Result reports one collection run: the Bayesian decision, its posterior
// confidence, who was asked, what it cost, and why collection stopped.
type Result = online.Result

// StopReason explains why a collection run ended.
type StopReason = online.StopReason

// The collection stopping reasons.
const (
	StopConfident = online.StopConfident
	StopBudget    = online.StopBudget
	StopExhausted = online.StopExhausted
)

// VoteSource produces a worker's vote when asked.
type VoteSource = online.VoteSource

// SimulatedSource draws votes from worker qualities and a latent truth —
// for testing and simulation.
type SimulatedSource = online.SimulatedSource

// RecordedSource replays pre-collected votes.
type RecordedSource = online.RecordedSource

// Policy chooses the order in which workers are asked.
type Policy = online.Policy

// QualityFirst asks the most informative workers first.
func QualityFirst() Policy { return online.QualityFirst{} }

// CheapestFirst asks the cheapest workers first.
func CheapestFirst() Policy { return online.CheapestFirst{} }

// EvidencePerCost asks workers by log-odds-per-cost density — usually the
// best accuracy-per-dollar ordering.
func EvidencePerCost() Policy { return online.EvidencePerCost{} }

// RandomOrder asks workers in random order (the arrival-order baseline).
func RandomOrder() Policy { return online.RandomOrder{} }

// Collect runs sequential vote collection over the pool.
func Collect(pool worker.Pool, src VoteSource, policy Policy, cfg Config, rng *rand.Rand) (Result, error) {
	return online.Collect(pool, src, policy, cfg, rng)
}
