package quality_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/jury"
	"repro/jury/multi"
	"repro/jury/quality"
)

// TestPublicBootstrapFlow exercises the documented deployment flow: raw
// answers → EM qualities → jury selection.
func TestPublicBootstrapFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueQ := []float64{0.92, 0.85, 0.7, 0.65, 0.6}
	const tasks = 200
	d := quality.Dataset{NumTasks: tasks, NumWorkers: len(trueQ)}
	for task := 0; task < tasks; task++ {
		truth := jury.Vote(rng.Intn(2))
		for w, q := range trueQ {
			v := truth
			if rng.Float64() >= q {
				v = v.Opposite()
			}
			d.Responses = append(d.Responses, quality.Response{Task: task, Worker: w, Vote: v})
		}
	}
	res, err := quality.EM(d, quality.EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range trueQ {
		if math.Abs(res.Qualities[w]-want) > 0.1 {
			t.Errorf("worker %d: EM quality %v, want ≈%v", w, res.Qualities[w], want)
		}
	}
	// Feed the estimated qualities into jury selection.
	pool := jury.NewPool(res.Qualities, []float64{5, 4, 2, 2, 1})
	sel, err := jury.Select(pool, 7, jury.UniformPrior, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost > 7 || len(sel.Jury) == 0 {
		t.Fatalf("selection = %+v", sel)
	}
}

func TestPublicEMConfusion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const labels, tasks, workers = 3, 150, 4
	d := quality.DatasetL{NumTasks: tasks, NumWorkers: workers, Labels: labels}
	for task := 0; task < tasks; task++ {
		truth := rng.Intn(labels)
		for w := 0; w < workers; w++ {
			vote := truth
			if rng.Float64() > 0.75 { // 75% accurate workers
				vote = rng.Intn(labels)
			}
			d.Responses = append(d.Responses, quality.ResponseL{
				Task: task, Worker: w, Vote: multiLabel(vote),
			})
		}
	}
	res, err := quality.EMConfusion(d, quality.EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Confusions) != workers || len(res.Labels) != tasks {
		t.Fatalf("shape: %d confusions, %d labels", len(res.Confusions), len(res.Labels))
	}
	for w, m := range res.Confusions {
		if err := m.Validate(); err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestPublicGolden(t *testing.T) {
	d := quality.Dataset{NumTasks: 2, NumWorkers: 1, Responses: []quality.Response{
		{Task: 0, Worker: 0, Vote: jury.No},
		{Task: 1, Worker: 0, Vote: jury.No},
	}}
	qs, err := quality.Golden(d, map[int]jury.Vote{0: jury.No, 1: jury.Yes})
	if err != nil {
		t.Fatal(err)
	}
	// 1 correct of 2, smoothed: (1+1)/(2+2) = 0.5.
	if qs[0] != 0.5 {
		t.Fatalf("quality = %v, want 0.5", qs[0])
	}
}

// multiLabel converts an int vote to the public multi-choice label type.
func multiLabel(v int) multi.Label { return multi.Label(v) }
