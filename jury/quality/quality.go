// Package quality exposes worker-quality estimation: the inputs the
// jury-selection machinery assumes known (paper Section 2.1). It provides
// the golden-question estimator and the Dawid–Skene EM algorithm for both
// the binary single-quality model and ℓ-ary confusion matrices — so a
// deployment can bootstrap qualities from raw crowd answers with or
// without ground truth, then feed them into jury.Select.
package quality

import (
	"repro/internal/quality"
	"repro/internal/voting"
)

// Response is one worker's answer to one binary task.
type Response = quality.Response

// Dataset is a sparse matrix of crowd answers.
type Dataset = quality.Dataset

// EMOptions configures the EM estimators.
type EMOptions = quality.EMOptions

// EMResult is the output of the binary Dawid–Skene estimator: qualities,
// estimated prior, per-task posteriors and MAP labels.
type EMResult = quality.EMResult

// Golden estimates qualities from tasks with known ground truth: the
// fraction of correct answers, Laplace-smoothed.
func Golden(d Dataset, truths map[int]voting.Vote) ([]float64, error) {
	return quality.Golden(d, truths)
}

// EM jointly infers task truths and worker qualities with no ground truth
// at all (Dawid–Skene for the binary model).
func EM(d Dataset, opts EMOptions) (EMResult, error) {
	return quality.EM(d, opts)
}

// ResponseL is one worker's answer to one ℓ-ary task.
type ResponseL = quality.ResponseL

// DatasetL is a sparse matrix of multi-choice crowd answers.
type DatasetL = quality.DatasetL

// EMConfusionResult is the output of the full Dawid–Skene estimator:
// per-worker confusion matrices, the class prior, posteriors and labels.
type EMConfusionResult = quality.EMConfusionResult

// EMConfusion estimates per-worker confusion matrices for ℓ-ary tasks,
// feeding the jury/multi extension.
func EMConfusion(d DatasetL, opts EMOptions) (EMConfusionResult, error) {
	return quality.EMConfusion(d, opts)
}
