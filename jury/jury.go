// Package jury is the public API of the jury-selection library, a
// reproduction of Zheng, Cheng, Maniu, Mo: "On Optimality of Jury Selection
// in Crowdsourcing" (EDBT 2015).
//
// The library answers three questions about crowdsourced binary
// decision-making tasks:
//
//  1. Given a jury of workers (each with a quality — their probability of
//     voting correctly — and a cost) and a voting strategy, what is the
//     Jury Quality (JQ): the probability the aggregated answer is correct?
//  2. Which voting strategy maximizes JQ? (Bayesian Voting — provably
//     optimal among all deterministic and randomized strategies.)
//  3. Given a budget, which affordable jury maximizes JQ? (The Jury
//     Selection Problem, solved exactly for small pools and by simulated
//     annealing beyond.)
//
// Quick start:
//
//	pool := jury.NewPool(
//		[]float64{0.77, 0.70, 0.80, 0.65, 0.60, 0.60, 0.75}, // qualities
//		[]float64{9, 5, 6, 7, 5, 2, 3},                      // costs
//	)
//	res, err := jury.Select(pool, 15, jury.UniformPrior, 1)
//	// res.Jury is the chosen jury; res.JQ its estimated quality.
//
// See the examples directory for complete programs, and package jury/multi
// for the multiple-choice / confusion-matrix extension.
package jury

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/jq"
	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/worker"
)

// UniformPrior is the no-information prior P(t=0) = 0.5.
const UniformPrior = 0.5

// Worker models one crowd worker: a quality in [0, 1] (the probability of
// voting for the true answer) and a non-negative cost per vote.
type Worker = worker.Worker

// Pool is an ordered collection of workers; a jury is a Pool too.
type Pool = worker.Pool

// NewPool builds a pool from parallel quality and cost slices.
func NewPool(qualities, costs []float64) Pool { return worker.NewPool(qualities, costs) }

// UniformCostPool builds a pool where every worker has the same cost.
func UniformCostPool(qualities []float64, cost float64) Pool {
	return worker.UniformCost(qualities, cost)
}

// Vote is a binary answer: No (0) or Yes (1).
type Vote = voting.Vote

// The two possible answers of a decision-making task.
const (
	No  = voting.No
	Yes = voting.Yes
)

// Strategy aggregates a jury's votes into an estimated answer. The built-in
// strategies cover the paper's Table 2 taxonomy; Bayesian() is optimal.
type Strategy = voting.Strategy

// Bayesian returns the optimal voting strategy (Theorem 1 / Corollary 1):
// pick the answer with the larger posterior probability.
func Bayesian() Strategy { return voting.Bayesian{} }

// Majority returns classical majority voting (the strategy of the MVJS
// baseline, Cao et al. 2012).
func Majority() Strategy { return voting.Majority{} }

// RandomizedMajority returns the randomized majority strategy: answer 0
// with probability proportional to its vote share.
func RandomizedMajority() Strategy { return voting.RandomizedMajority{} }

// RandomBallot returns the uniformly random strategy (JQ is always 50%).
func RandomBallot() Strategy { return voting.RandomBallot{} }

// TriadicConsensus returns the triadic-consensus strategy (adapted from
// Goel & Lee): votes are concentrated toward the majority through rounds
// of random triads. rounds 0 selects 3.
func TriadicConsensus(rounds int) Strategy { return voting.TriadicConsensus{Rounds: rounds} }

// Strategies returns one instance of every built-in strategy.
func Strategies() []Strategy { return voting.All() }

// Decide aggregates votes with a strategy. qualities[i] is the quality of
// the worker who cast votes[i]; alpha is the prior P(t=0). rng may be nil
// for deterministic strategies.
func Decide(s Strategy, votes []Vote, qualities []float64, alpha float64, rng *rand.Rand) (Vote, error) {
	return voting.Decide(s, votes, qualities, alpha, rng)
}

// Confidence returns the posterior probability that the Bayesian decision
// on this specific voting is correct.
func Confidence(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	return core.PosteriorCorrect(votes, qualities, alpha)
}

// JQ computes the exact Jury Quality of a strategy on a jury — the
// probability that the strategy's result matches the truth (Definition 3).
// Exact computation is exponential (and NP-hard for Bayesian voting), so
// juries are limited to MaxExactJurySize workers; use EstimateJQ beyond.
func JQ(j Pool, s Strategy, alpha float64) (float64, error) {
	return jq.Exact(j, s, alpha)
}

// MaxExactJurySize is the largest jury the exact JQ computation accepts.
const MaxExactJurySize = jq.MaxExactJurySize

// ExactJQIterative computes the exact optimal-strategy JQ with the
// iterative merged-state construction (paper Figure 4) using exact
// rational keys. Its cost is proportional to the number of distinct
// evidence values rather than 2^n, so juries with repeated qualities —
// homogeneous pools in particular — are handled exactly at sizes far
// beyond MaxExactJurySize. It fails for pools whose evidence states would
// exceed the internal budget and for workers of quality exactly 0 or 1.
func ExactJQIterative(j Pool, alpha float64) (float64, error) {
	return jq.ExactIterative(j, alpha)
}

// JQEstimate carries the approximate JQ and its quality guarantees.
type JQEstimate = jq.Result

// EstimateJQ approximates the optimal-strategy JQ with the paper's
// polynomial-time bucket algorithm. The estimate never exceeds the true
// value and the gap is below the returned Bound (< 1% with
// numBuckets ≥ 200·n; the default 0 selects 50 buckets, which is accurate
// to ~0.01% in practice).
func EstimateJQ(j Pool, alpha float64, numBuckets int) (JQEstimate, error) {
	return jq.Estimate(j, alpha, jq.Options{NumBuckets: numBuckets})
}

// Selection is the outcome of solving the Jury Selection Problem.
type Selection = selection.Result

// Select solves the Jury Selection Problem with the optimal (Bayesian)
// voting strategy: among all juries whose total cost fits the budget,
// return the one with the highest JQ. Pools of at most 15 candidates are
// searched exhaustively; larger pools use the paper's simulated-annealing
// heuristic, seeded for reproducibility.
func Select(pool Pool, budget, alpha float64, seed int64) (Selection, error) {
	return selection.OPTJS(seed).Select(pool, budget, alpha)
}

// SelectMajority is the MVJS baseline: jury selection under majority
// voting (Cao et al. 2012). Provided for comparisons; Select dominates it.
func SelectMajority(pool Pool, budget, alpha float64, seed int64) (Selection, error) {
	return selection.MVJS(seed).Select(pool, budget, alpha)
}

// Selector is a pluggable jury-search algorithm; see NewExhaustive,
// NewAnnealing and friends for implementations.
type Selector = selection.Selector

// NewExhaustive returns the exact exponential search (small pools only).
func NewExhaustive() Selector {
	return selection.Exhaustive{Objective: selection.BVObjective{}}
}

// NewExhaustiveExact returns the exact search scored with the exact
// (enumeration-based) JQ instead of the bucket approximation.
func NewExhaustiveExact() Selector {
	return selection.Exhaustive{Objective: selection.BVExactObjective{}}
}

// NewAnnealing returns the paper's Algorithm 3 simulated-annealing search.
func NewAnnealing(seed int64) Selector {
	return selection.Annealing{Objective: selection.BVObjective{}, Seed: seed}
}

// NewGreedyQuality returns the quality-descending greedy baseline; optimal
// when all workers cost the same.
func NewGreedyQuality() Selector {
	return selection.GreedyQuality{Objective: selection.BVObjective{}}
}

// System is the end-to-end Optimal Jury Selection System of the paper's
// Figure 1: budget–quality tables, jury selection, and vote aggregation
// under one prior.
type System = core.System

// BudgetQualityRow is one row of a budget–quality table.
type BudgetQualityRow = core.TableRow

// NewSystem creates a System with the prior alpha = P(t=0) and a seed for
// the annealing search path.
func NewSystem(alpha float64, seed int64) *System { return core.NewSystem(alpha, seed) }
