package jury_test

import (
	"fmt"

	"repro/jury"
)

// The paper's Figure 1 pool: seven workers with (quality, cost).
func examplePool() jury.Pool {
	return jury.Pool{
		{ID: "A", Quality: 0.77, Cost: 9},
		{ID: "B", Quality: 0.70, Cost: 5},
		{ID: "C", Quality: 0.80, Cost: 6},
		{ID: "D", Quality: 0.65, Cost: 7},
		{ID: "E", Quality: 0.60, Cost: 5},
		{ID: "F", Quality: 0.60, Cost: 2},
		{ID: "G", Quality: 0.75, Cost: 3},
	}
}

func ExampleSelect() {
	res, err := jury.Select(examplePool(), 15, jury.UniformPrior, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, w := range res.Jury {
		fmt.Printf("%s ", w.ID)
	}
	fmt.Printf("JQ=%.3f cost=%.0f\n", res.JQ, res.Cost)
	// Output: B C G JQ=0.845 cost=14
}

func ExampleJQ() {
	// The Figure 2 jury: majority voting versus the optimal strategy.
	j := jury.UniformCostPool([]float64{0.9, 0.6, 0.6}, 1)
	mv, _ := jury.JQ(j, jury.Majority(), jury.UniformPrior)
	bv, _ := jury.JQ(j, jury.Bayesian(), jury.UniformPrior)
	fmt.Printf("MV=%.3f BV=%.3f\n", mv, bv)
	// Output: MV=0.792 BV=0.900
}

func ExampleEstimateJQ() {
	j := jury.UniformCostPool([]float64{0.9, 0.6, 0.6}, 1)
	est, _ := jury.EstimateJQ(j, jury.UniformPrior, 600) // 200 buckets per worker
	fmt.Printf("JQ=%.3f (error < %.4f)\n", est.JQ, est.Bound)
	// Output: JQ=0.900 (error < 0.0028)
}

func ExampleDecide() {
	// A strong worker votes "no"; two weak workers vote "yes".
	votes := []jury.Vote{jury.No, jury.Yes, jury.Yes}
	qualities := []float64{0.9, 0.6, 0.6}
	decision, _ := jury.Decide(jury.Bayesian(), votes, qualities, jury.UniformPrior, nil)
	confidence, _ := jury.Confidence(votes, qualities, jury.UniformPrior)
	fmt.Printf("%v (%.0f%%)\n", decision, 100*confidence)
	// Output: no (80%)
}

func ExampleSystem_budgetQualityTable() {
	sys := jury.NewSystem(jury.UniformPrior, 1)
	rows, err := sys.BudgetQualityTable(examplePool(), []float64{5, 15})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range rows {
		fmt.Printf("B=%.0f JQ=%.3f pays=%.0f\n", row.Budget, row.JQ, row.RequiredBudget)
	}
	// Output:
	// B=5 JQ=0.750 pays=3
	// B=15 JQ=0.845 pays=14
}

func ExampleSystem_minBudget() {
	sys := jury.NewSystem(jury.UniformPrior, 1)
	row, err := sys.MinBudget(examplePool(), 0.84, 0.05)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("JQ=%.3f pays=%.0f\n", row.JQ, row.RequiredBudget)
	// Output: JQ=0.845 pays=14
}
