// Package batch allocates one global budget across many tasks, running
// the optimal jury selection per task under the allocated share. It is
// the deployment-level layer above jury.Select: a provider with 600
// questions and one purse first decides how much each question deserves.
package batch

import (
	"repro/internal/batch"
)

// Task is one decision-making task: its candidate pool and prior.
type Task = batch.Task

// Allocation is the per-task outcome; Result the whole batch.
type (
	Allocation = batch.Allocation
	Result     = batch.Result
)

// Allocator distributes a global budget over tasks.
type Allocator = batch.Allocator

// Even splits the budget equally across tasks.
func Even() Allocator { return batch.Even{} }

// WeightedByPrior gives uncertain tasks (prior near ½) more budget,
// proportional to prior entropy.
func WeightedByPrior() Allocator { return batch.WeightedByPrior{} }

// GreedyMarginal spends the budget in increments, each on the task whose
// jury improves the most — usually the strongest allocator on
// heterogeneous batches. steps 0 selects 20 increments.
func GreedyMarginal(steps int) Allocator { return batch.GreedyMarginal{Steps: steps} }
