package batch_test

import (
	"testing"

	"repro/jury"
	"repro/jury/batch"
)

func TestPublicBatchAllocation(t *testing.T) {
	mk := func(qs ...float64) jury.Pool {
		return jury.UniformCostPool(qs, 0.05)
	}
	tasks := []batch.Task{
		{Name: "t1", Pool: mk(0.9, 0.7, 0.6), Alpha: 0.5},
		{Name: "t2", Pool: mk(0.6, 0.6, 0.55), Alpha: 0.5},
		{Name: "t3", Pool: mk(0.8, 0.75), Alpha: 0.9},
	}
	for _, a := range []batch.Allocator{batch.Even(), batch.WeightedByPrior(), batch.GreedyMarginal(0)} {
		res, err := a.Allocate(tasks, 0.3, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.SpentBudget > 0.3+1e-9 {
			t.Errorf("%s: spent %v over budget", a.Name(), res.SpentBudget)
		}
		if len(res.Allocations) != 3 {
			t.Errorf("%s: %d allocations", a.Name(), len(res.Allocations))
		}
		if res.MeanJQ < 0.5 {
			t.Errorf("%s: MeanJQ = %v", a.Name(), res.MeanJQ)
		}
	}
}
