package multi_test

import (
	"math"
	"testing"

	"repro/jury/multi"
)

func pool3(t *testing.T, qs ...float64) multi.Pool {
	t.Helper()
	p := make(multi.Pool, len(qs))
	for i, q := range qs {
		m, err := multi.NewSymmetricConfusion(3, q)
		if err != nil {
			t.Fatal(err)
		}
		p[i] = multi.Worker{Confusion: m, Cost: 1}
	}
	return p
}

func TestPublicMultiJQ(t *testing.T) {
	p := pool3(t, 0.8, 0.6, 0.7)
	prior := multi.UniformPrior(3)
	bv, err := multi.JQ(p, multi.Bayesian(), prior)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := multi.JQ(p, multi.Plurality(), prior)
	if err != nil {
		t.Fatal(err)
	}
	if bv < pl-1e-9 {
		t.Fatalf("BV (%v) below plurality (%v)", bv, pl)
	}
	est, err := multi.EstimateJQ(p, prior, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-bv) > 0.01 {
		t.Fatalf("estimate %v far from exact %v", est, bv)
	}
}

func TestPublicRankingAndGreedy(t *testing.T) {
	p := pool3(t, 0.9, 0.5, 0.34)
	order := multi.RankWorkers(p)
	if order[0] != 0 {
		t.Fatalf("order = %v, want the 0.9 worker first", order)
	}
	if s := multi.InformativenessScore(p[2].Confusion); s > 0.05 {
		t.Fatalf("near-uniform worker score = %v, want ≈0", s)
	}
	res, err := multi.GreedySelect(p, 2, multi.UniformPrior(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 2 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
}

func TestPublicMultiSelect(t *testing.T) {
	p := pool3(t, 0.9, 0.8, 0.7, 0.6, 0.55)
	for i := range p {
		p[i].Cost = float64(5 - i) // better workers cost more
	}
	res, err := multi.Select(p, 6, multi.UniformPrior(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 6 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
	if len(res.Jury) == 0 {
		t.Fatal("empty jury selected with ample budget")
	}
}
