package multi_test

import (
	"fmt"

	"repro/jury/multi"
)

func ExampleJQ() {
	// Three-label task, three symmetric workers: Bayesian beats plurality.
	var pool multi.Pool
	for _, q := range []float64{0.8, 0.6, 0.7} {
		m, err := multi.NewSymmetricConfusion(3, q)
		if err != nil {
			fmt.Println(err)
			return
		}
		pool = append(pool, multi.Worker{Confusion: m, Cost: 1})
	}
	prior := multi.UniformPrior(3)
	bv, _ := multi.JQ(pool, multi.Bayesian(), prior)
	pl, _ := multi.JQ(pool, multi.Plurality(), prior)
	fmt.Printf("BV=%.4f plurality=%.4f\n", bv, pl)
	// Output: BV=0.8360 plurality=0.8193
}
