// Package multi exposes the multiple-choice extension of the jury-selection
// library (Section 7 of the paper): tasks with ℓ ≥ 2 possible answers and
// workers modeled by confusion matrices instead of a single quality score.
//
// Bayesian voting remains the optimal strategy in this model, the Jury
// Quality is computed by a bucketed dynamic program over log-posterior
// margins, and the Jury Selection Problem is solved by the same simulated
// annealing with the JQ computation as a black box.
package multi

import (
	"repro/internal/multichoice"
)

// Label is a task answer in {0, …, ℓ−1}.
type Label = multichoice.Label

// ConfusionMatrix is a row-stochastic ℓ×ℓ matrix: entry [j][k] is the
// probability of voting k when the true answer is j.
type ConfusionMatrix = multichoice.ConfusionMatrix

// NewSymmetricConfusion builds the single-parameter symmetric matrix with
// diagonal q — the natural generalization of the binary quality model.
func NewSymmetricConfusion(labels int, q float64) (ConfusionMatrix, error) {
	return multichoice.NewSymmetricConfusion(labels, q)
}

// Worker is a multi-choice crowd worker.
type Worker = multichoice.Worker

// Pool is an ordered set of workers sharing one label count.
type Pool = multichoice.Pool

// Prior is the task provider's distribution over the ℓ labels.
type Prior = multichoice.Prior

// UniformPrior returns the maximum-entropy prior over ℓ labels.
func UniformPrior(labels int) Prior { return multichoice.UniformPrior(labels) }

// Strategy estimates the true label from a voting.
type Strategy = multichoice.Strategy

// Bayesian returns the optimal strategy: argmax of the posterior.
func Bayesian() Strategy { return multichoice.Bayesian{} }

// Plurality returns the most-votes strategy (ℓ-ary majority voting).
func Plurality() Strategy { return multichoice.Plurality{} }

// JQ computes the exact Jury Quality of a strategy by enumeration
// (exponential; small juries only).
func JQ(pool Pool, s Strategy, prior Prior) (float64, error) {
	return multichoice.ExactJQ(pool, s, prior)
}

// EstimateJQ approximates the optimal-strategy JQ with the Section 7
// bucketed dynamic program. numBuckets 0 selects 50.
func EstimateJQ(pool Pool, prior Prior, numBuckets int) (float64, error) {
	return multichoice.EstimateBV(pool, prior, numBuckets)
}

// Selection is the outcome of multi-choice jury selection.
type Selection = multichoice.SelectionResult

// Select solves the multi-choice Jury Selection Problem by simulated
// annealing over the approximate JQ.
func Select(pool Pool, budget float64, prior Prior, seed int64) (Selection, error) {
	return multichoice.SelectAnnealing(pool, budget, prior, multichoice.EstimateObjective(0), seed)
}

// InformativenessScore quantifies how much a worker's votes reveal about
// the truth, in [0, 1]: 0 for label-blind spammers (identical confusion
// rows), 1 for perfect workers, |2q−1| for the binary symmetric model.
func InformativenessScore(m ConfusionMatrix) float64 {
	return multichoice.InformativenessScore(m)
}

// RankWorkers orders pool indices by decreasing informativeness (ties
// toward cheaper workers) — the heuristic the paper suggests for ranking
// confusion-matrix workers.
func RankWorkers(pool Pool) []int { return multichoice.RankWorkers(pool) }

// GreedySelect picks workers in informativeness order within the budget —
// a fast baseline against Select.
func GreedySelect(pool Pool, budget float64, prior Prior) (Selection, error) {
	return multichoice.GreedyByInformativeness(pool, budget, prior, multichoice.EstimateObjective(0))
}
