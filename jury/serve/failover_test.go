package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// deadURL returns the base URL of a server that refuses every connection.
func deadURL(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close()
	return ts.URL
}

// TestMutationRotatesOffDeadPrimary: a keyed mutation whose primary is
// dead (connection refused — the reply provably never existed at the TCP
// level, and the key makes replay safe regardless) rotates onto the
// replica list and lands on the node that now accepts writes.
func TestMutationRotatesOffDeadPrimary(t *testing.T) {
	promoted, hits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.IngestResponse{Ingested: 1})
	})

	c := NewClient(deadURL(t)).WithReplicas(promoted.URL).WithRetry(fastRetry(4))
	if _, err := c.IngestVoteKeyed(context.Background(),
		VoteEvent{WorkerID: "ann", Correct: true}, NewIdempotencyKey()); err != nil {
		t.Fatalf("keyed ingest with dead primary: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("promoted node saw %d attempts, want 1", got)
	}
}

// TestMutation421PinsThenUnpinsOnDeadAdvertisedPrimary is the failover
// race: the base follower still advertises the dead old primary. The
// client follows the 421 (pin), hits the corpse (transport error →
// unpin), and resumes rotating — which finds the newly promoted node on
// the replica list.
func TestMutation421PinsThenUnpinsOnDeadAdvertisedPrimary(t *testing.T) {
	dead := deadURL(t)
	follower, fHits := fakeNode(t, replica421(dead))
	promoted, pHits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.IngestResponse{Ingested: 1})
	})

	c := NewClient(follower.URL).WithReplicas(promoted.URL).WithRetry(fastRetry(3))
	if _, err := c.IngestVoteKeyed(context.Background(),
		VoteEvent{WorkerID: "ann", Correct: true}, NewIdempotencyKey()); err != nil {
		t.Fatalf("keyed ingest across stale advertisement: %v", err)
	}
	if fHits.Load() != 1 || pHits.Load() != 1 {
		t.Fatalf("follower/promoted saw %d/%d attempts, want 1/1", fHits.Load(), pHits.Load())
	}
}

// TestMutation421ToNewlyPromotedPrimary: after a failover the follower's
// 421 names the live new primary; one hop lands the write there.
func TestMutation421ToNewlyPromotedPrimary(t *testing.T) {
	promoted, pHits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.IngestResponse{Ingested: 1})
	})
	follower, fHits := fakeNode(t, replica421(promoted.URL))

	// The dead old primary is the base; the follower is the only replica.
	c := NewClient(deadURL(t)).WithReplicas(follower.URL).WithRetry(fastRetry(4))
	if _, err := c.IngestVoteKeyed(context.Background(),
		VoteEvent{WorkerID: "ann", Correct: true}, NewIdempotencyKey()); err != nil {
		t.Fatalf("keyed ingest after promotion: %v", err)
	}
	if fHits.Load() != 1 || pHits.Load() != 1 {
		t.Fatalf("follower/promoted saw %d/%d attempts, want 1/1 (dead base, one hop)", fHits.Load(), pHits.Load())
	}
}

// TestUnkeyedMutationDoesNotRotateOnLostReply: rotation piggybacks on
// the retry decision — a plain POST with no idempotency key must not
// replay (and hence not rotate) after a transport error, because the
// lost reply may have applied.
func TestUnkeyedMutationDoesNotRotateOnLostReply(t *testing.T) {
	replica, rHits := fakeNode(t, okWorkers)
	c := NewClient(deadURL(t)).WithReplicas(replica.URL).WithRetry(fastRetry(4))
	_, err := c.OpenSession(context.Background(), SessionRequest{Confidence: 0.9, Budget: 10})
	if err == nil {
		t.Fatal("unkeyed POST with a lost reply succeeded via rotation; must surface the transport error")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("expected a transport error, got API error %v", apiErr)
	}
	if got := rHits.Load(); got != 0 {
		t.Fatalf("replica saw %d attempts of a non-replayable mutation, want 0", got)
	}
}

// TestAdminCallsAreSticky: Promote/Fence/Repoint address one specific
// node. They must not rotate onto replicas and must not follow 421s —
// "promote whoever answers" would be a different (and wrong) operation.
func TestAdminCallsAreSticky(t *testing.T) {
	elsewhere, eHits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.PromoteResponse{Promoted: true, Epoch: 9})
	})
	target, tHits := fakeNode(t, replica421(elsewhere.URL))

	c := NewClient(target.URL).WithReplicas(elsewhere.URL).WithRetry(fastRetry(4))
	ctx := context.Background()
	_, err := c.Promote(ctx, PromoteRequest{Advertise: target.URL})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusMisdirectedRequest {
		t.Fatalf("promote against a 421 node = %v, want the 421 surfaced", err)
	}
	if _, err := c.Fence(ctx, FenceRequest{Epoch: 2}); !errors.As(err, &apiErr) {
		t.Fatalf("fence = %v, want surfaced APIError", err)
	}
	if _, err := c.Repoint(ctx, RepointRequest{Primary: elsewhere.URL}); !errors.As(err, &apiErr) {
		t.Fatalf("repoint = %v, want surfaced APIError", err)
	}
	if got := eHits.Load(); got != 0 {
		t.Fatalf("admin calls leaked to another node %d times, want 0", got)
	}
	if got := tHits.Load(); got != 3 {
		t.Fatalf("target saw %d admin attempts, want exactly 3 (no retries, no hops)", got)
	}
}

// TestAdminCallsReplayOnTransientFailure: sticky does not mean fragile —
// a 503 (or lost reply) retries against the same node, since all three
// admin calls are idempotent.
func TestAdminCallsReplayOnTransientFailure(t *testing.T) {
	calls := 0
	node, hits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "busy"})
			return
		}
		json.NewEncoder(w).Encode(server.PromoteResponse{Promoted: true, Epoch: 3, AppliedLSN: 17})
	})

	c := NewClient(node.URL).WithRetry(fastRetry(3))
	resp, err := c.Promote(context.Background(), PromoteRequest{})
	if err != nil {
		t.Fatalf("promote through a 503: %v", err)
	}
	if !resp.Promoted || resp.Epoch != 3 || resp.AppliedLSN != 17 {
		t.Fatalf("promote response = %+v", resp)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("node saw %d attempts, want 2", got)
	}
}
