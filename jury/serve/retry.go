package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// RetryPolicy governs how the client retries failed requests.
//
// Two failure classes retry:
//
//   - Retryable statuses (429 overload shed, 503 degraded/draining/deadline)
//     retry for every request: a non-2xx reply proves the mutation was not
//     applied, so replaying it is always safe.
//   - Transport errors (connection refused, reset, timeout) mean the reply
//     was lost and the server may or may not have applied the request.
//     These retry only for idempotent requests: reads, selections (cached,
//     side-effect-free), and keyed ingests — the server deduplicates an
//     Idempotency-Key, so a blind replay applies exactly once.
//
// Delays are exponential with full jitter: attempt n sleeps a uniform
// random duration in (0, min(BaseDelay·2ⁿ, MaxDelay)]. A Retry-After
// header on a 429/503 overrides the backoff, capped at MaxDelay.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); values
	// below 1 mean a single attempt, i.e. retries off.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff.
	BaseDelay time.Duration
	// MaxDelay caps each backoff sleep (and any honored Retry-After).
	MaxDelay time.Duration
	// PerTryTimeout bounds each individual attempt; 0 leaves attempts
	// governed only by the caller's context.
	PerTryTimeout time.Duration
}

// DefaultRetryPolicy is the policy NewClient starts with: 4 attempts,
// 50ms base delay, 2s cap, no per-try timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// WithRetry replaces the client's retry policy and returns c. Use
// RetryPolicy{MaxAttempts: 1} to disable retries entirely.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// NewIdempotencyKey returns a fresh random key for the Idempotency-Key
// header (128 bits, hex). The keyed ingest methods call it automatically;
// it is exported for callers that persist keys across process restarts to
// make their own retries exact-once.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// callOpts classifies one request for the retry loop.
type callOpts struct {
	// idempotent marks the request safe to replay after a lost reply.
	idempotent bool
	// read marks a request that only reads state: with WithReplicas
	// configured, it is served from the replica list (failing over to the
	// primary) instead of the primary alone.
	read bool
	// sticky pins every attempt to the client's base URL: no replica
	// rotation and no 421 following. Admin calls addressed to one
	// specific node (promote, fence, repoint) use it — rotating them
	// onto a different node would change their meaning.
	sticky bool
	// key is sent as the Idempotency-Key header; a non-empty key makes
	// the request idempotent by server-side deduplication.
	key string
	// requestID is sent as the X-Request-Id header on every attempt of
	// one logical call, so the daemon's traces and logs stitch retries
	// of the same operation together under one ID.
	requestID string
}

// requestIDKey carries a caller-chosen request ID through a context.
type requestIDKey struct{}

// WithRequestID returns a context that makes the client send id as the
// X-Request-Id header for calls under it, instead of generating one.
// Use it to stitch daemon-side traces and logs to an ID the caller
// already logs (e.g. an upstream request ID).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestIDFrom resolves the request ID for one logical call: the
// caller's, or a fresh random one. Generated once per call — retries
// reuse it.
func requestIDFrom(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok && id != "" {
		return id
	}
	return obs.NewID()
}

// attempts returns the bounded try count.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the sleep before retry number attempt (0-based): the
// server's Retry-After when it gave one, else full-jitter exponential
// backoff. Both are capped at MaxDelay.
func (p RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	if retryAfter > 0 {
		return min(retryAfter, maxd)
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << attempt
	if d <= 0 || d > maxd { // overflow or past the cap
		d = maxd
	}
	return time.Duration(mrand.Int64N(int64(d))) + 1
}

// retryableStatus reports whether a non-2xx status is worth retrying:
// 429 (admission control shed) and 503 (degraded, draining, or deadline
// exceeded) are transient by contract; everything else is the caller's
// bug or a permanent condition.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// shouldRetry classifies one attempt's error.
func shouldRetry(err error, opts callOpts) (retry bool, retryAfter time.Duration) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return retryableStatus(apiErr.Status), apiErr.RetryAfter
	}
	// Transport error, or a per-try timeout: the reply was lost, so the
	// server may have applied the request — replay only when that is safe.
	return opts.idempotent || opts.key != "", 0
}

// call runs one JSON request through the retry loop. in may be nil (no
// body); out may be nil (discard body).
func (c *Client) call(ctx context.Context, method, path string, in, out any, opts callOpts) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	opts.requestID = requestIDFrom(ctx)
	// Reads spread over the replica list (primary last, as the fallback).
	// Mutations start at the configured primary but rotate across the
	// replicas on retryable failures: after a failover the old primary is
	// dead or fenced, and any follower's 421 names the live one. Rotation
	// is safe exactly when retrying is — shouldRetry already guarantees
	// the request was not applied (non-2xx) or is idempotent/keyed.
	bases := []string{c.base}
	if len(c.replicas) > 0 && !opts.sticky {
		if opts.read {
			bases = append(append([]string{}, c.replicas...), c.base)
		} else {
			bases = append(bases, c.replicas...)
		}
	}
	// redirected pins writes to the primary a 421 advertised; a transport
	// failure there unpins, resuming rotation (the advertised primary may
	// itself have died).
	writeBase := ""
	redirected := false
	var lastErr error
	for attempt := 0; attempt < c.retry.attempts(); attempt++ {
		if attempt > 0 {
			var after time.Duration
			if retry, ra := shouldRetry(lastErr, opts); retry {
				after = ra
			}
			t := time.NewTimer(c.retry.delay(attempt-1, after))
			select {
			case <-ctx.Done():
				t.Stop()
				return lastErr
			case <-t.C:
			}
		}
		base := bases[attempt%len(bases)]
		if redirected {
			base = writeBase
		}
		err := c.once(ctx, base, method, path, data, out, opts)
		if err == nil {
			return nil
		}
		lastErr = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusMisdirectedRequest {
			// A read-only replica (or fenced ex-primary) bounced a
			// mutation. Follow the advertised primary at most once per
			// attempt: the redirect replays immediately (a 421 proves
			// nothing was applied), and a second 421 from the advertised
			// node — a replica pointing at a replica — is a configuration
			// error, not a loop.
			if !opts.read && !opts.sticky && !redirected && apiErr.Primary != "" {
				redirected = true
				writeBase = strings.TrimRight(apiErr.Primary, "/")
				attempt--
				continue
			}
			return err
		}
		if errors.As(err, &apiErr) {
			if retry, _ := shouldRetry(err, opts); !retry {
				return err
			}
		} else {
			// Transport error. If it hit a 421-advertised primary, that
			// advertisement is stale (the node died after advertising):
			// unpin so the next attempt resumes rotating the base list.
			redirected = false
			if retry, _ := shouldRetry(err, opts); !retry {
				return err
			}
		}
		if ctx.Err() != nil {
			// The caller's deadline is spent; further attempts would only
			// fail the same way.
			return err
		}
	}
	return lastErr
}

// once runs a single HTTP attempt against base.
func (c *Client) once(ctx context.Context, base, method, path string, data []byte, out any, opts callOpts) error {
	if c.retry.PerTryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.PerTryTimeout)
		defer cancel()
	}
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if opts.key != "" {
		req.Header.Set("Idempotency-Key", opts.key)
	}
	if opts.requestID != "" {
		req.Header.Set(obs.RequestIDHeader, opts.requestID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr server.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: retryAfterOf(resp.Header),
			Primary:    resp.Header.Get(server.PrimaryHeader),
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryAfterOf parses a Retry-After header given in seconds; HTTP-date
// values and garbage yield 0 (use backoff).
func retryAfterOf(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
