package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fastRetry is a test policy with negligible backoff.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
			return
		}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(server.RegisterResponse{Registered: 1, PoolSize: 1})
	}))
	t.Cleanup(ts.Close)

	// A plain POST mutation: 503 proves it was not applied, so even
	// non-idempotent requests retry through it.
	c := NewClient(ts.URL).WithRetry(fastRetry(4))
	if err := c.RegisterWorkers(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}); err != nil {
		t.Fatalf("register through 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryExhaustionSurfacesAPIError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "overloaded"})
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL).WithRetry(fastRetry(3))
	_, err := c.Select(context.Background(), SelectRequest{Budget: 5})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=3", got)
	}
}

func TestNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "no such worker"})
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL).WithRetry(fastRetry(4))
	if _, err := c.Worker(context.Background(), "ghost"); err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 404, want 1", got)
	}
}

// TestLostReplyRetriesOnlyIdempotent drops the first connection of each
// request without a reply — the case where the client cannot know
// whether the server applied the mutation.
func TestLostReplyRetriesOnlyIdempotent(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // client sees EOF / connection reset
			return
		}
		json.NewEncoder(w).Encode(server.IngestResponse{Ingested: 1})
	}))
	t.Cleanup(ts.Close)
	// Keep each attempt on a fresh connection so the hijacked close is
	// observed as this request's failure.
	transport := &http.Transport{DisableKeepAlives: true}
	t.Cleanup(transport.CloseIdleConnections)

	// Keyed ingest: idempotent, so the lost reply is retried and the
	// second attempt lands.
	c := NewClient(ts.URL).WithRetry(fastRetry(4)).WithHTTPClient(&http.Client{Transport: transport})
	if _, err := c.IngestVote(context.Background(), VoteEvent{WorkerID: "a", Correct: true}); err != nil {
		t.Fatalf("keyed ingest through lost reply: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}

	// An unkeyed POST mutation (session vote) must NOT be replayed: the
	// transport error surfaces to the caller on the first attempt.
	calls.Store(0)
	_, err := c.SessionVote(context.Background(), "s1", "a", 1)
	if err == nil {
		t.Fatal("unkeyed mutation with lost reply should fail")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("want transport error, got API error %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for unkeyed mutation, want 1", got)
	}
}

func TestIngestGeneratesIdempotencyKeys(t *testing.T) {
	keys := make(chan string, 2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get("Idempotency-Key")
		json.NewEncoder(w).Encode(server.IngestResponse{Ingested: 1})
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	ctx := context.Background()
	if _, err := c.IngestVote(ctx, VoteEvent{WorkerID: "a", Correct: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestVotes(ctx, []VoteEvent{{WorkerID: "a", Correct: true}}); err != nil {
		t.Fatal(err)
	}
	k1, k2 := <-keys, <-keys
	if len(k1) != 32 || len(k2) != 32 {
		t.Fatalf("keys %q, %q: want 32 hex chars", k1, k2)
	}
	if k1 == k2 {
		t.Fatalf("two ingests shared key %q", k1)
	}
}

// TestKeyedRetryAgainstRealServer replays the same keyed batch into a
// live daemon and checks the second reply is flagged Duplicate with the
// vote applied exactly once.
func TestKeyedRetryAgainstRealServer(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	if err := c.RegisterWorkers(ctx, []WorkerSpec{{ID: "ann", Quality: 0.8, Cost: 3}}); err != nil {
		t.Fatal(err)
	}
	key := NewIdempotencyKey()
	first, err := c.IngestVoteKeyed(ctx, VoteEvent{WorkerID: "ann", Correct: true}, key)
	if err != nil || first.Ingested != 1 || first.Duplicate {
		t.Fatalf("first keyed ingest = %+v, %v", first, err)
	}
	second, err := c.IngestVoteKeyed(ctx, VoteEvent{WorkerID: "ann", Correct: true}, key)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Duplicate || second.Ingested != 0 {
		t.Fatalf("replay = %+v, want Duplicate with 0 ingested", second)
	}
	w, err := c.Worker(ctx, "ann")
	if err != nil {
		t.Fatal(err)
	}
	if w.Votes != 1 {
		t.Fatalf("ann has %d votes after replayed ingest, want 1", w.Votes)
	}
}

func TestPerTryTimeout(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(server.ListResponse{})
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	p := fastRetry(2)
	p.PerTryTimeout = 50 * time.Millisecond
	c := NewClient(ts.URL).WithRetry(p)
	start := time.Now()
	if _, err := c.Workers(context.Background()); err != nil {
		t.Fatalf("list through stalled first try: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v; per-try timeout did not fire", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestRequestIDStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-Id"))
		n := len(ids)
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
			return
		}
		json.NewEncoder(w).Encode(server.SelectResponse{})
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL).WithRetry(fastRetry(4))
	if _, err := c.Select(context.Background(), SelectRequest{Budget: 1}); err != nil {
		t.Fatalf("select through 503s: %v", err)
	}
	mu.Lock()
	first := append([]string(nil), ids...)
	mu.Unlock()
	if len(first) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(first))
	}
	if first[0] == "" {
		t.Fatal("client sent no X-Request-Id")
	}
	if first[1] != first[0] || first[2] != first[0] {
		t.Fatalf("request id changed across retries: %v", first)
	}

	// A second logical call must get a different ID.
	if _, err := c.Select(context.Background(), SelectRequest{Budget: 1}); err != nil {
		t.Fatalf("second select: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ids[3] == first[0] {
		t.Fatalf("distinct logical calls share request id %q", ids[3])
	}
}

func TestRequestIDFromContext(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Request-Id"))
		json.NewEncoder(w).Encode(server.SelectResponse{})
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL).WithRetry(fastRetry(1))
	ctx := WithRequestID(context.Background(), "upstream-777")
	if _, err := c.Select(ctx, SelectRequest{Budget: 1}); err != nil {
		t.Fatal(err)
	}
	if id, _ := got.Load().(string); id != "upstream-777" {
		t.Fatalf("server saw request id %q, want upstream-777", id)
	}
}
