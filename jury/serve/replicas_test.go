package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

// fakeNode is a scripted juryd stand-in that records which requests it
// received and answers with a fixed handler.
func fakeNode(t *testing.T, handler http.HandlerFunc) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		handler(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func okWorkers(w http.ResponseWriter, _ *http.Request) {
	json.NewEncoder(w).Encode(server.ListResponse{Signature: "sig"})
}

func okSelect(w http.ResponseWriter, _ *http.Request) {
	json.NewEncoder(w).Encode(server.SelectResponse{Signature: "sig", Strategy: "bv"})
}

// TestReadsPreferReplicas: with replicas configured, GETs and read-only
// POSTs (selections) land on the replica list, not the primary.
func TestReadsPreferReplicas(t *testing.T) {
	primary, pHits := fakeNode(t, okWorkers)
	replica, rHits := fakeNode(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/workers":
			okWorkers(w, r)
		case "/v1/select":
			okSelect(w, r)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	})

	c := NewClient(primary.URL).WithReplicas(replica.URL).WithRetry(fastRetry(3))
	if _, err := c.Workers(context.Background()); err != nil {
		t.Fatalf("list via replica: %v", err)
	}
	if _, err := c.Select(context.Background(), SelectRequest{Budget: 10}); err != nil {
		t.Fatalf("select via replica: %v", err)
	}
	if got := rHits.Load(); got != 2 {
		t.Fatalf("replica saw %d reads, want 2", got)
	}
	if got := pHits.Load(); got != 0 {
		t.Fatalf("primary saw %d reads, want 0 (replicas configured)", got)
	}
}

// TestReadFailoverAcrossReplicaList: a dead replica's reads fail over to
// the next base (ultimately the primary) on subsequent attempts.
func TestReadFailoverAcrossReplicaList(t *testing.T) {
	primary, pHits := fakeNode(t, okWorkers)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // connection refused from now on

	c := NewClient(primary.URL).WithReplicas(dead.URL).WithRetry(fastRetry(3))
	if _, err := c.Workers(context.Background()); err != nil {
		t.Fatalf("list with a dead replica: %v", err)
	}
	if got := pHits.Load(); got != 1 {
		t.Fatalf("primary saw %d requests, want the failed-over read", got)
	}
}

// TestWriteRotationBouncesOffReplicaBackToPrimary: a retried mutation
// rotates onto the replica list, and the replica's 421 routes it
// straight back to the (recovered) primary — the rotation can only ever
// land a write where a node of the current topology says writes belong.
func TestWriteRotationBouncesOffReplicaBackToPrimary(t *testing.T) {
	var calls atomic.Int32
	primary, pHits := fakeNode(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "draining"})
			return
		}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(server.RegisterResponse{Registered: 1})
	})
	replica, rHits := fakeNode(t, replica421(primary.URL))

	c := NewClient(primary.URL).WithReplicas(replica.URL).WithRetry(fastRetry(3))
	if err := c.RegisterWorkers(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}); err != nil {
		t.Fatalf("register through a 503: %v", err)
	}
	if got := pHits.Load(); got != 2 {
		t.Fatalf("primary saw %d write attempts, want the 503 and the redirected retry", got)
	}
	if got := rHits.Load(); got != 1 {
		t.Fatalf("replica saw %d write attempts, want the one rotated attempt", got)
	}
}

// replica421 answers every request as a read-only replica pointing at
// primaryURL.
func replica421(primaryURL string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(server.PrimaryHeader, primaryURL)
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "read-only replica"})
	}
}

// TestMutation421RedirectsToPrimaryOnce: a client (mis)configured with a
// follower as its base gets a 421 and lands the write on the advertised
// primary — with exactly one redirect.
func TestMutation421RedirectsToPrimaryOnce(t *testing.T) {
	primary, pHits := fakeNode(t, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(server.RegisterResponse{Registered: 1})
	})
	follower, fHits := fakeNode(t, replica421(primary.URL))

	c := NewClient(follower.URL).WithRetry(fastRetry(3))
	if err := c.RegisterWorkers(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}); err != nil {
		t.Fatalf("register via 421 redirect: %v", err)
	}
	if got := fHits.Load(); got != 1 {
		t.Fatalf("follower saw %d attempts, want 1", got)
	}
	if got := pHits.Load(); got != 1 {
		t.Fatalf("primary saw %d attempts, want the redirected write", got)
	}
}

// TestMutation421LoopFailsAfterOneRedirect: a "primary" that itself
// answers 421 must surface the error after a single redirect instead of
// bouncing between replicas.
func TestMutation421LoopFailsAfterOneRedirect(t *testing.T) {
	var loopHits atomic.Int32
	loop := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		loopHits.Add(1)
		w.Header().Set(server.PrimaryHeader, "http://unreachable.example")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "read-only replica"})
	}))
	t.Cleanup(loop.Close)
	follower, fHits := fakeNode(t, replica421(loop.URL))

	c := NewClient(follower.URL).WithRetry(fastRetry(4))
	err := c.RegisterWorkers(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusMisdirectedRequest {
		t.Fatalf("register into a 421 loop: %v, want the second 421 surfaced", err)
	}
	if apiErr.Primary == "" {
		t.Fatalf("surfaced 421 lost the advertised primary: %+v", apiErr)
	}
	if fHits.Load() != 1 || loopHits.Load() != 1 {
		t.Fatalf("follower/loop saw %d/%d attempts, want exactly one each", fHits.Load(), loopHits.Load())
	}
}

// TestRead421IsTerminal: a read should never get a 421, but if a broken
// proxy produces one, the client must not redirect reads (the replica
// list is the failover path) — the error surfaces.
func TestRead421IsTerminal(t *testing.T) {
	primary, _ := fakeNode(t, okWorkers)
	weird, hits := fakeNode(t, replica421(primary.URL))

	c := NewClient(weird.URL).WithRetry(fastRetry(3))
	_, err := c.Workers(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusMisdirectedRequest {
		t.Fatalf("read 421 = %v, want it surfaced", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d read attempts, want 1 (no retry on 421)", got)
	}
}

// TestEndToEndFollowerRouting runs the real stack: a durable primary, a
// real follower in SetFollower mode, and a client pointed at the
// follower with the primary unknown to it — the 421 metadata alone must
// route the write.
func TestEndToEndFollowerRouting(t *testing.T) {
	p, err := server.Open(server.Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tsP := httptest.NewServer(p.Handler())
	t.Cleanup(tsP.Close)
	f, err := server.Open(server.Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	f.SetFollower(tsP.URL)
	tsF := httptest.NewServer(f.Handler())
	t.Cleanup(tsF.Close)

	c := NewClient(tsF.URL).WithRetry(fastRetry(3))
	if err := c.RegisterWorkers(context.Background(), []WorkerSpec{{ID: "ann", Quality: 0.8, Cost: 3}}); err != nil {
		t.Fatalf("register via follower: %v", err)
	}
	// The write landed on the primary, not the follower.
	list, err := NewClient(tsP.URL).Workers(context.Background())
	if err != nil || len(list.Workers) != 1 {
		t.Fatalf("primary pool = %+v (%v), want the redirected worker", list, err)
	}
	if applied := f.AppliedLSN(); applied != 0 {
		t.Fatalf("follower journaled %d records from a redirected write, want 0", applied)
	}
}
