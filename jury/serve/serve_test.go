package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

func newClient(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL + "/") // trailing slash is trimmed
}

// TestPersistenceStatus covers the /debug/persistence surface: disabled
// on an in-memory daemon, and carrying recovery counters on a durable
// one that rebooted.
func TestPersistenceStatus(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	st, err := c.Persistence(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("in-memory daemon reports persistence: %+v", st)
	}

	cfg := server.Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()}
	s, err := server.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	dc := NewClient(ts.URL)
	if err := dc.RegisterWorkers(ctx, []WorkerSpec{{ID: "ann", Quality: 0.8, Cost: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.IngestVote(ctx, VoteEvent{WorkerID: "ann", Correct: true}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	s2, err := server.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	st, err = NewClient(ts2.URL).Persistence(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Recovery == nil {
		t.Fatalf("durable daemon status = %+v, want enabled with recovery", st)
	}
	if st.Recovery.RecordsReplayed != 2 || st.Recovery.WorkersRestored != 1 {
		t.Fatalf("recovery = %+v, want 2 records replayed, 1 worker restored", st.Recovery)
	}
	if st.NextLSN != 3 {
		t.Fatalf("NextLSN = %d, want 3", st.NextLSN)
	}
}

func TestClientEndToEnd(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	specs := []WorkerSpec{
		{ID: "ann", Quality: 0.77, Cost: 9},
		{ID: "bob", Quality: 0.70, Cost: 5},
		{ID: "cy", Quality: 0.80, Cost: 6},
		{ID: "dee", Quality: 0.65, Cost: 7},
		{ID: "eve", Quality: 0.60, Cost: 5},
		{ID: "fay", Quality: 0.60, Cost: 2},
		{ID: "gil", Quality: 0.75, Cost: 3},
	}
	if err := c.RegisterWorkers(ctx, specs); err != nil {
		t.Fatal(err)
	}
	list, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 7 {
		t.Fatalf("workers = %+v", list)
	}

	// Selection, then the cached repeat.
	res, err := c.Select(ctx, SelectRequest{Budget: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.JQ <= 0.5 || res.Cost > 15 {
		t.Fatalf("select = %+v", res)
	}
	res2, err := c.Select(ctx, SelectRequest{Budget: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || res2.JQ != res.JQ {
		t.Fatalf("repeat select = %+v", res2)
	}

	// Vote ingestion drifts quality and invalidates.
	ing, err := c.IngestVotes(ctx, []VoteEvent{
		{WorkerID: "fay", Correct: true},
		{WorkerID: "fay", Correct: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != 2 || len(ing.Updated) != 1 || ing.Updated[0].Quality <= 0.60 {
		t.Fatalf("ingest = %+v", ing)
	}
	res3, err := c.Select(ctx, SelectRequest{Budget: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Fatal("stale cache served after ingest")
	}

	// Budget sweep.
	sweep, err := c.SelectBatch(ctx, BatchSelectRequest{Budgets: []float64{5, 10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 3 || sweep[0].Budget != 5 || sweep[2].Budget != 20 {
		t.Fatalf("sweep = %+v", sweep)
	}

	// Worker CRUD.
	w, err := c.Worker(ctx, "gil")
	if err != nil || w.Quality != 0.75 {
		t.Fatalf("Worker(gil) = %+v, %v", w, err)
	}
	w, err = c.UpdateWorker(ctx, WorkerSpec{ID: "gil", Quality: 0.9, Cost: 4})
	if err != nil || w.Quality != 0.9 {
		t.Fatalf("UpdateWorker = %+v, %v", w, err)
	}
	if err := c.RemoveWorker(ctx, "dee"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Worker(ctx, "dee"); err == nil {
		t.Fatal("removed worker still readable")
	}

	// Metrics text is scrapeable.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "juryd_cache_hits_total 1") {
		t.Fatalf("metrics missing hit counter:\n%s", text)
	}
}

func TestClientSessions(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	if err := c.RegisterWorkers(ctx, []WorkerSpec{
		{ID: "a", Quality: 0.9, Cost: 1},
		{ID: "b", Quality: 0.9, Cost: 1},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenSession(ctx, SessionRequest{Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.SessionVote(ctx, st.ID, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Fatalf("one 0.9 vote already confident: %+v", st)
	}
	st, err = c.SessionVote(ctx, st.ID, "b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Stopped != "confident" || st.Decision != 1 {
		t.Fatalf("session = %+v", st)
	}
	got, err := c.Session(ctx, st.ID)
	if err != nil || !got.Done {
		t.Fatalf("Session(%s) = %+v, %v", st.ID, got, err)
	}
	if err := c.CloseSession(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, st.ID); err == nil {
		t.Fatal("closed session still readable")
	}
}

func TestClientAPIError(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	err := c.RegisterWorkers(ctx, []WorkerSpec{{ID: "", Quality: 0.5, Cost: 1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Message == "" {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Select(ctx, SelectRequest{Budget: 1}); err == nil {
		t.Fatal("select on empty registry succeeded")
	}
}

// TestClientMultiPool drives the whole multi-choice surface through the
// client: pool creation, listing, graded ingestion (Dirichlet drift),
// late registration, cached selection, JQ estimation, and drop.
func TestClientMultiPool(t *testing.T) {
	ctx := context.Background()
	c := newClient(t)
	q := func(v float64) *float64 { return &v }

	created, err := c.CreateMultiPool(ctx, MultiCreateRequest{
		Name:   "colors",
		Labels: 3,
		Workers: []MultiWorkerSpec{
			{ID: "m0", Quality: q(0.8), Cost: 2},
			{ID: "m1", Confusion: [][]float64{
				{0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}, {0.2, 0.2, 0.6},
			}, Cost: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if created.PoolSize != 2 || created.Signature == "" {
		t.Fatalf("create = %+v", created)
	}

	pools, err := c.MultiPools(ctx)
	if err != nil || len(pools) != 1 || pools[0].Labels != 3 {
		t.Fatalf("pools = %+v, err %v", pools, err)
	}

	if _, err := c.RegisterMultiWorkers(ctx, "colors",
		[]MultiWorkerSpec{{ID: "m2", Quality: q(0.65), Cost: 1}}); err != nil {
		t.Fatal(err)
	}

	first, err := c.MultiSelect(ctx, "colors", MultiSelectRequest{Budget: 5})
	if err != nil || first.Cached || len(first.Jury) == 0 {
		t.Fatalf("first select = %+v, err %v", first, err)
	}
	second, err := c.MultiSelect(ctx, "colors", MultiSelectRequest{Budget: 5})
	if err != nil || !second.Cached {
		t.Fatalf("second select = %+v, err %v", second, err)
	}

	ing, err := c.IngestMultiVotes(ctx, "colors", []MultiVoteEvent{
		{WorkerID: "m0", Truth: 0, Vote: 0},
		{WorkerID: "m2", Truth: 2, Vote: 1},
	})
	if err != nil || ing.Ingested != 2 || len(ing.Updated) != 2 {
		t.Fatalf("ingest = %+v, err %v", ing, err)
	}
	if ing.Signature == first.Signature {
		t.Fatal("signature unchanged after drift")
	}
	third, err := c.MultiSelect(ctx, "colors", MultiSelectRequest{Budget: 5})
	if err != nil || third.Cached || third.Signature != ing.Signature {
		t.Fatalf("post-drift select = %+v, err %v", third, err)
	}

	jq, err := c.MultiJQ(ctx, "colors", MultiJQRequest{WorkerIDs: []string{"m0", "m1"}})
	if err != nil || jq.JQ <= 0 || jq.JQ > 1 || jq.Method != "estimate" {
		t.Fatalf("jq = %+v, err %v", jq, err)
	}

	info, err := c.MultiPool(ctx, "colors")
	if err != nil || len(info.Workers) != 3 {
		t.Fatalf("pool info = %+v, err %v", info, err)
	}
	if err := c.DropMultiPool(ctx, "colors"); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.MultiPool(ctx, "colors"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("dropped pool fetch = %v", err)
	}
}
