// Package serve is the client side of the juryd serving subsystem: a thin
// HTTP client over the daemon's JSON API, sharing one set of wire types
// with the server so the library and the service expose the same surface.
//
// A deployment registers its worker pool once, streams graded vote events
// as tasks resolve (each event refines the worker's quality via a Bayesian
// posterior update on the server), and asks for juries whenever a new task
// needs one — repeated selections on an unchanged pool are answered from
// the daemon's selection cache.
//
//	c := serve.NewClient("http://localhost:8700")
//	c.RegisterWorkers(ctx, []serve.WorkerSpec{{ID: "ann", Quality: 0.8, Cost: 3}, ...})
//	res, err := c.Select(ctx, serve.SelectRequest{Budget: 15})
//	// res.Jury, res.JQ, res.Cached
package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/voting"
)

// voteOf converts a 0/1 answer to the wire vote type; out-of-range values
// are passed through and rejected by the daemon.
func voteOf(v int) voting.Vote { return voting.Vote(v) }

// The wire types, shared verbatim with the daemon.
type (
	// WorkerSpec registers or updates one worker.
	WorkerSpec = server.WorkerSpec
	// WorkerInfo is one registered worker's current state.
	WorkerInfo = server.WorkerInfo
	// VoteEvent is one graded vote: the worker answered and was (in)correct.
	VoteEvent = server.VoteEvent
	// SelectRequest asks for the best jury within a budget.
	SelectRequest = server.SelectRequest
	// SelectResponse is the selected jury, with Cached provenance.
	SelectResponse = server.SelectResponse
	// BatchSelectRequest asks for one selection per budget.
	BatchSelectRequest = server.BatchSelectRequest
	// JuryMember is one selected worker.
	JuryMember = server.JuryMember
	// SessionRequest opens an online collection session.
	SessionRequest = server.SessionRequest
	// SessionState reports a session's progress.
	SessionState = server.SessionState
	// IngestResponse reports a vote-ingestion outcome.
	IngestResponse = server.IngestResponse
	// ListResponse lists the registry.
	ListResponse = server.ListResponse
	// PersistenceStatus reports the daemon's durability/recovery state.
	PersistenceStatus = server.PersistenceStatus
	// RecoveryStatus describes what boot-time recovery reconstructed.
	RecoveryStatus = server.RecoveryStatus
	// MultiWorkerSpec registers one confusion-matrix worker.
	MultiWorkerSpec = server.MultiWorkerSpec
	// MultiWorkerInfo is one multi-choice worker's current state.
	MultiWorkerInfo = server.MultiWorkerInfo
	// MultiCreateRequest creates a multi-choice pool.
	MultiCreateRequest = server.MultiCreateRequest
	// MultiPoolInfo is one multi-choice pool's full state.
	MultiPoolInfo = server.MultiPoolInfo
	// MultiPoolSummary is one pool in a listing.
	MultiPoolSummary = server.MultiPoolSummary
	// MultiVoteEvent is one graded multi-label vote (worker, truth, vote).
	MultiVoteEvent = server.MultiVoteEvent
	// MultiIngestResponse reports a multi-label vote-ingestion outcome.
	MultiIngestResponse = server.MultiIngestResponse
	// MultiRegisterResponse confirms a multi-choice registration.
	MultiRegisterResponse = server.MultiRegisterResponse
	// MultiSelectRequest asks for the best multi-choice jury in a budget.
	MultiSelectRequest = server.MultiSelectRequest
	// MultiSelectResponse is the selected multi-choice jury.
	MultiSelectResponse = server.MultiSelectResponse
	// MultiJQRequest asks for the Jury Quality of an explicit jury.
	MultiJQRequest = server.MultiJQRequest
	// MultiJQResponse reports the computed Jury Quality.
	MultiJQResponse = server.MultiJQResponse
	// ReplStatus reports a node's replication position and epoch.
	ReplStatus = server.ReplStatus
	// PromoteRequest asks a follower to become the writable primary.
	PromoteRequest = server.PromoteRequest
	// PromoteResponse reports a promotion outcome.
	PromoteResponse = server.PromoteResponse
	// FenceRequest forbids a stale ex-primary from accepting writes.
	FenceRequest = server.FenceRequest
	// FenceResponse reports a fencing outcome.
	FenceResponse = server.FenceResponse
	// RepointRequest re-targets a follower at a new primary.
	RepointRequest = server.RepointRequest
	// RepointResponse confirms a follower's new upstream.
	RepointResponse = server.RepointResponse
)

// Client talks to one juryd daemon. The zero value is not usable; create
// with NewClient.
//
// The client is retry-safe by construction: transient failures (429
// shed, 503 degraded/draining, lost replies on idempotent requests)
// retry automatically under the client's RetryPolicy, and every vote
// ingest carries a generated Idempotency-Key so a replay the server
// already applied is deduplicated rather than double-counted. See
// RetryPolicy for the exact classification.
type Client struct {
	base     string
	replicas []string
	http     *http.Client
	retry    RetryPolicy
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:8700"). The default http.Client and retry policy
// are used; use WithHTTPClient for custom transports or timeouts and
// WithRetry to tune or disable retries.
func NewClient(baseURL string) *Client {
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  http.DefaultClient,
		retry: DefaultRetryPolicy(),
	}
}

// WithHTTPClient substitutes the underlying HTTP client and returns c.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.http = hc
	return c
}

// WithReplicas registers the addresses of the other cluster nodes
// (juryd followers) and returns c. Read requests — GETs and the
// read-only POST routes (selections, JQ evaluations) — are served from
// the replicas, failing over across the list and finally the primary as
// retry attempts progress. Mutations start at the primary but rotate
// across the replicas on retryable failures, so the client survives a
// failover: a follower answers a misdirected write with 421 and the
// live primary's address, which the client follows at most once per
// attempt (so a stale replica list still lands writes correctly, while
// a misconfigured loop cannot bounce forever).
func (c *Client) WithReplicas(urls ...string) *Client {
	c.replicas = c.replicas[:0]
	for _, u := range urls {
		c.replicas = append(c.replicas, strings.TrimRight(u, "/"))
	}
	return c
}

// APIError is a non-2xx reply from the daemon.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint, when it gave one
	// (overload sheds and degraded/draining 503s do).
	RetryAfter time.Duration
	// Primary is the primary's address from X-Juryd-Primary, set on a
	// 421 — the daemon is a read-only replica and mutations belong there.
	Primary string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("juryd: %d: %s", e.Status, e.Message)
}

// do runs one JSON request through the retry loop. in may be nil (no
// body); out may be nil (discard body). GET, PUT and DELETE are
// idempotent by HTTP semantics; a POST must opt in via doIdem (read-only
// selections) or a keyed call (deduplicated ingests).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, callOpts{
		idempotent: method != http.MethodPost,
		read:       method == http.MethodGet,
	})
}

// doIdem runs one JSON request that is idempotent regardless of method —
// POST routes that only read (selections, JQ evaluations), which the
// daemon answers from pure registry state and its selection cache.
func (c *Client) doIdem(ctx context.Context, method, path string, in, out any) error {
	return c.call(ctx, method, path, in, out, callOpts{idempotent: true, read: true})
}

// RegisterWorkers registers a batch of new workers.
func (c *Client) RegisterWorkers(ctx context.Context, specs []WorkerSpec) error {
	return c.do(ctx, http.MethodPost, "/v1/workers", server.RegisterRequest{Workers: specs}, nil)
}

// Workers lists the registry in registration order.
func (c *Client) Workers(ctx context.Context) (ListResponse, error) {
	var out ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out)
	return out, err
}

// Worker fetches one worker's state.
func (c *Client) Worker(ctx context.Context, id string) (WorkerInfo, error) {
	var out WorkerInfo
	err := c.do(ctx, http.MethodGet, "/v1/workers/"+url.PathEscape(id), nil, &out)
	return out, err
}

// UpdateWorker replaces a worker's quality and cost (resets its posterior).
func (c *Client) UpdateWorker(ctx context.Context, spec WorkerSpec) (WorkerInfo, error) {
	var out WorkerInfo
	err := c.do(ctx, http.MethodPut, "/v1/workers/"+url.PathEscape(spec.ID), spec, &out)
	return out, err
}

// RemoveWorker deregisters a worker.
func (c *Client) RemoveWorker(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workers/"+url.PathEscape(id), nil, nil)
}

// IngestVote feeds one graded vote event into the daemon, under a fresh
// Idempotency-Key so retries (the client's own or the caller's) apply it
// exactly once.
func (c *Client) IngestVote(ctx context.Context, ev VoteEvent) (IngestResponse, error) {
	return c.IngestVoteKeyed(ctx, ev, NewIdempotencyKey())
}

// IngestVoteKeyed feeds one graded vote event under a caller-chosen
// Idempotency-Key (see NewIdempotencyKey). Response.Duplicate reports a
// replay the server had already applied.
func (c *Client) IngestVoteKeyed(ctx context.Context, ev VoteEvent, key string) (IngestResponse, error) {
	var out IngestResponse
	err := c.call(ctx, http.MethodPost, "/v1/votes", ev, &out, callOpts{key: key})
	return out, err
}

// IngestVotes feeds a batch of graded vote events atomically, under a
// fresh Idempotency-Key so retries apply the batch exactly once.
func (c *Client) IngestVotes(ctx context.Context, events []VoteEvent) (IngestResponse, error) {
	return c.IngestVotesKeyed(ctx, events, NewIdempotencyKey())
}

// IngestVotesKeyed feeds a batch atomically under a caller-chosen
// Idempotency-Key.
func (c *Client) IngestVotesKeyed(ctx context.Context, events []VoteEvent, key string) (IngestResponse, error) {
	var out IngestResponse
	err := c.call(ctx, http.MethodPost, "/v1/votes/batch",
		server.IngestRequest{Events: events}, &out, callOpts{key: key})
	return out, err
}

// Select solves the Jury Selection Problem on the daemon's current pool.
// Selections are read-only, so lost replies retry transparently.
func (c *Client) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	var out SelectResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/select", req, &out)
	return out, err
}

// SelectBatch solves one selection per budget; result i answers
// req.Budgets[i].
func (c *Client) SelectBatch(ctx context.Context, req BatchSelectRequest) ([]SelectResponse, error) {
	var out server.BatchSelectResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/select/batch", req, &out)
	return out.Selections, err
}

// OpenSession starts an online collection session.
func (c *Client) OpenSession(ctx context.Context, req SessionRequest) (SessionState, error) {
	var out SessionState
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out)
	return out, err
}

// SessionVote feeds one vote into a session; the evidence weight is the
// worker's current registry quality.
func (c *Client) SessionVote(ctx context.Context, sessionID, workerID string, vote int) (SessionState, error) {
	var out SessionState
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/votes",
		server.SessionVoteRequest{WorkerID: workerID, Vote: voteOf(vote)}, &out)
	return out, err
}

// Session fetches a session's state.
func (c *Client) Session(ctx context.Context, id string) (SessionState, error) {
	var out SessionState
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out)
	return out, err
}

// CloseSession removes a session.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// CreateMultiPool creates a named multi-choice pool of confusion-matrix
// workers.
func (c *Client) CreateMultiPool(ctx context.Context, req MultiCreateRequest) (MultiRegisterResponse, error) {
	var out MultiRegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/multi/pools", req, &out)
	return out, err
}

// MultiPools lists the multi-choice pools in creation order.
func (c *Client) MultiPools(ctx context.Context) ([]MultiPoolSummary, error) {
	var out server.MultiPoolsResponse
	err := c.do(ctx, http.MethodGet, "/v1/multi/pools", nil, &out)
	return out.Pools, err
}

// MultiPool fetches one pool's full state.
func (c *Client) MultiPool(ctx context.Context, name string) (MultiPoolInfo, error) {
	var out MultiPoolInfo
	err := c.do(ctx, http.MethodGet, "/v1/multi/pools/"+url.PathEscape(name), nil, &out)
	return out, err
}

// DropMultiPool deletes a pool and all its workers.
func (c *Client) DropMultiPool(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/multi/pools/"+url.PathEscape(name), nil, nil)
}

// RegisterMultiWorkers adds workers to an existing multi-choice pool.
func (c *Client) RegisterMultiWorkers(ctx context.Context, pool string, specs []MultiWorkerSpec) (MultiRegisterResponse, error) {
	var out MultiRegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/multi/pools/"+url.PathEscape(pool)+"/workers",
		server.MultiRegisterRequest{Workers: specs}, &out)
	return out, err
}

// IngestMultiVotes feeds a batch of graded multi-label vote events
// atomically; each is one Dirichlet posterior step on the voting
// worker's confusion matrix. The batch carries a fresh Idempotency-Key
// so retries apply it exactly once.
func (c *Client) IngestMultiVotes(ctx context.Context, pool string, events []MultiVoteEvent) (MultiIngestResponse, error) {
	return c.IngestMultiVotesKeyed(ctx, pool, events, NewIdempotencyKey())
}

// IngestMultiVotesKeyed feeds a multi-label batch under a caller-chosen
// Idempotency-Key.
func (c *Client) IngestMultiVotesKeyed(ctx context.Context, pool string, events []MultiVoteEvent, key string) (MultiIngestResponse, error) {
	var out MultiIngestResponse
	err := c.call(ctx, http.MethodPost, "/v1/multi/pools/"+url.PathEscape(pool)+"/votes",
		server.MultiIngestRequest{Events: events}, &out, callOpts{key: key})
	return out, err
}

// MultiSelect solves the multi-choice Jury Selection Problem on one
// pool's current state.
func (c *Client) MultiSelect(ctx context.Context, pool string, req MultiSelectRequest) (MultiSelectResponse, error) {
	var out MultiSelectResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/multi/pools/"+url.PathEscape(pool)+"/select", req, &out)
	return out, err
}

// MultiJQ computes the Jury Quality of an explicit jury drawn from a
// pool, under the optimal (Bayesian) strategy.
func (c *Client) MultiJQ(ctx context.Context, pool string, req MultiJQRequest) (MultiJQResponse, error) {
	var out MultiJQResponse
	err := c.doIdem(ctx, http.MethodPost, "/v1/multi/pools/"+url.PathEscape(pool)+"/jq", req, &out)
	return out, err
}

// Promote asks the daemon at the client's base URL — normally a
// follower — to become the writable primary under a new epoch. The call
// is addressed to that one node: it neither rotates across replicas nor
// follows 421 redirects, and it is safe to replay (promotion is
// idempotent per epoch; an already-primary node answers AlreadyPrimary).
// If the response reports OldPrimaryFenced false, the old primary was
// unreachable and MUST be fenced (Fence, against it) or wiped before it
// is allowed to serve again.
func (c *Client) Promote(ctx context.Context, req PromoteRequest) (PromoteResponse, error) {
	var out PromoteResponse
	err := c.call(ctx, http.MethodPost, "/v1/repl/promote", req, &out, callOpts{idempotent: true, sticky: true})
	return out, err
}

// Fence forbids the daemon at the client's base URL from accepting
// writes under any epoch below req.Epoch, directing clients to
// req.Primary instead. Addressed to that one node; safe to replay.
func (c *Client) Fence(ctx context.Context, req FenceRequest) (FenceResponse, error) {
	var out FenceResponse
	err := c.call(ctx, http.MethodPost, "/v1/repl/fence", req, &out, callOpts{idempotent: true, sticky: true})
	return out, err
}

// Repoint re-targets the follower at the client's base URL at a new
// primary URL, effective from its next replication poll. Addressed to
// that one node; safe to replay.
func (c *Client) Repoint(ctx context.Context, req RepointRequest) (RepointResponse, error) {
	var out RepointResponse
	err := c.call(ctx, http.MethodPost, "/v1/repl/repoint", req, &out, callOpts{idempotent: true, sticky: true})
	return out, err
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Persistence reports the daemon's durability state: whether it runs
// with a WAL, the recovery summary of its last boot (snapshot LSN,
// records replayed, torn bytes truncated), and the current log position.
func (c *Client) Persistence(ctx context.Context) (PersistenceStatus, error) {
	var out PersistenceStatus
	err := c.do(ctx, http.MethodGet, "/debug/persistence", nil, &out)
	return out, err
}

// Metrics returns the raw Prometheus-style metrics text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 400 {
		return "", &APIError{Status: resp.StatusCode, Message: string(data)}
	}
	return string(data), nil
}
