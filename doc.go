// Package repro is the root of a reproduction of Zheng, Cheng, Maniu, Mo:
// "On Optimality of Jury Selection in Crowdsourcing" (EDBT 2015).
//
// The public API lives in package repro/jury (binary decision-making
// tasks) and repro/jury/multi (multiple-choice tasks with confusion-matrix
// workers). The implementation lives under internal/: see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-versus-measured
// record. The benchmarks in bench_test.go regenerate every evaluation
// artifact of the paper.
package repro
