// Package repro is the root of a reproduction of Zheng, Cheng, Maniu, Mo:
// "On Optimality of Jury Selection in Crowdsourcing" (EDBT 2015).
//
// The public API lives in package repro/jury (binary decision-making
// tasks) and repro/jury/multi (multiple-choice tasks with confusion-matrix
// workers). The implementation lives under internal/: see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-versus-measured
// record. The benchmarks in bench_test.go regenerate every evaluation
// artifact of the paper.
//
// # Performance
//
// The hot path of the whole system is jury-quality evaluation inside the
// Algorithm 3 annealing search: thousands of juries per solve, each
// differing from the previous one by a single add/swap/remove. Three
// evaluation engines in internal/jq serve this workload; each is built
// once per (candidate pool, prior, options) and then scores arbitrary
// subsets — passed as index slices (any order; they are treated as sets)
// or bitmasks — without re-validating, re-normalizing, recomputing
// log-odds, or allocating:
//
//   - jq.NewEstimator: the Algorithm 1 bucket approximation of JQ under
//     Bayesian Voting. Per-worker log-odds are precomputed, the bucket DP
//     runs in reusable scratch buffers, and results are memoized on the
//     jury's canonical (sorted-index) signature, so juries revisited
//     during a search are answered from the table. Eval results are
//     bit-identical to the one-shot jq.Estimate on the same subset; the
//     memo is capped (Options.MemoLimit, default jq.DefaultMemoLimit)
//     and its effectiveness is observable via Stats().Hits/Misses,
//     alongside the per-call KeysVisited/KeysPruned counters.
//   - jq.NewMVEvaluator: the Majority Voting closed form with
//     O(n)-update delta evaluation. A stack of Poisson-binomial DP
//     snapshots (one per jury prefix) makes adding a worker one O(n) row
//     and removing one a rollback to the divergence point, while staying
//     bit-identical to jq.MajorityClosedForm on the canonical subset.
//   - jq.NewExactBVEvaluator: the exponential exact-BV enumeration
//     without per-subset allocation, for small-jury reference runs.
//
// The selection layer picks these up automatically: objectives that
// implement selection.EvaluatorProvider (BV, MV, BV-exact) hand the
// searches a per-pool selection.Evaluator, and Annealing and Exhaustive
// score every jury through it — the annealing swap loop allocates
// nothing per move. The greedy selectors score one jury exactly once,
// so they deliberately use the generic subset adapter instead of
// building a per-pool engine. Evaluators are single-goroutine;
// parallel searches build one each. Annealing restarts fan out across a
// bounded goroutine pool with per-restart RNGs derived from the seed, and
// the repeat/trial loops of internal/experiments do the same
// (Config.Parallel; 0 = all CPUs, 1 = sequential), folding results in
// index order so parallel sweeps stay byte-identical to sequential runs —
// the wall-clock-measuring panels (fig7b, fig9d) always time their inner
// region sequentially.
//
// To record before/after numbers for a performance change, benchmark the
// ablation suite at both revisions and compare with benchstat:
//
//	go test -bench 'BenchmarkAblation' -benchmem -count 10 -run '^$' . > BENCH_old.txt
//	<apply change>
//	go test -bench 'BenchmarkAblation' -benchmem -count 10 -run '^$' . > BENCH_new.txt
//	benchstat BENCH_old.txt BENCH_new.txt
//
// and keep machine-readable artifacts next to the text files with
// `go test -bench ... -json > BENCH_<rev>.json`. The engines themselves
// are covered by BenchmarkAblationEstimatorJQ (direct vs estimator vs
// estimator+memo), BenchmarkAblationMVDeltaJQ (closed form vs delta),
// and BenchmarkAblationSweepParallel (sequential vs parallel sweeps).
//
// # Serving
//
// The paper frames jury selection as a query a requester asks repeatedly;
// cmd/juryd serves that query as a long-running HTTP daemon built on
// internal/server, with jury/serve as the matching client. Three pieces
// make it a system rather than a CLI in a loop:
//
//   - Worker registry (server.Registry): the candidate pool lives in
//     memory behind an RWMutex. Each worker carries a Beta posterior over
//     its correctness probability, seeded from the registered quality as
//     pseudo-counts (Config.PriorStrength votes' worth). Ingesting a
//     graded vote event is one posterior step; the worker's quality is
//     always the posterior mean, so quality drifts continuously as
//     evidence accumulates — the online-processing view of Section 8.
//   - Selection cache (server.SelectionCache): selections are memoized
//     under a key that includes the pool signature — a hash of the exact
//     (id, quality, cost) triples of the candidate set — plus budget,
//     prior, strategy, and annealing seed.
//   - Online sessions: sequential vote collection (internal/online) is
//     exposed as a stateful resource; each posted vote advances an
//     online.Session (the incremental engine Collect itself drives) and
//     reports decision, confidence, and the stopping rule's verdict.
//
// Consistency model: a cached jury can never be served stale. The cache
// key derives from the exact worker states the selection was computed
// against, and every selector is deterministic given that key, so a
// lookup either finds a bit-identical answer or misses. A vote ingest
// that moves any posterior mean changes the pool signature, making every
// prior key for that pool unconstructible — invalidation is structural,
// not event-driven, and needs no cross-request coordination. The cost of
// this design is garbage, not wrongness: superseded entries linger until
// LRU eviction (bounded by Config.CacheSize). Selections run on immutable
// pool snapshots outside all locks, so a long annealing search never
// blocks ingestion; a selection raced by an ingest returns the jury that
// was optimal for the snapshot it was asked about, tagged with that
// snapshot's signature. Batch budget sweeps fan out over the bounded
// internal/conc pool. BenchmarkServerSelect records the cached-versus-
// uncached throughput gap; /metrics exposes request counts, per-route
// latency histograms (juryd_request_duration_seconds), cache hit rate,
// and cumulative selection latency at runtime. API.md at the repository
// root is the route-by-route wire reference, kept honest by a test that
// diffs it against the server's registered route table.
//
// # Multi-choice serving
//
// The Section 7 extension — ℓ-ary tasks with confusion-matrix workers
// (jury/multi, internal/multichoice) — is served over HTTP alongside the
// binary routes. Multi-choice workers live in named pools
// (server.MultiRegistry); each pool fixes one label count, so one daemon
// can serve 3-label sentiment and 5-label rating workloads side by side:
//
//   - Dirichlet posteriors: where a binary worker carries one Beta
//     posterior, a multi-choice worker carries one Dirichlet posterior
//     per confusion row, seeded from the registered matrix scaled by the
//     prior strength. A graded multi-label vote event (worker, truth,
//     vote) adds one pseudo-count to the (truth, vote) cell and row
//     `truth` becomes its new posterior mean — rows without evidence
//     never drift.
//   - Full-matrix signatures: the pool signature hashes the label count
//     and every worker's id, cost, and complete ℓ×ℓ matrix, so drift in
//     any row invalidates cached selections structurally, exactly like
//     the binary arm. Multi-choice selections share the binary LRU
//     (disjoint key spaces); their keys also carry the full prior
//     vector, the bucket resolution, and — for the seeded annealing
//     strategy — the seed.
//   - Strategies: "anneal" (simulated annealing over the Section 7
//     bucketed JQ estimate, the default), "greedy" (informativeness-
//     ranked), "exhaustive" (exact enumeration for small pools), plus a
//     JQ endpoint that scores an explicit jury (estimate or exact).
//     The bucketed DP iterates its state maps in sorted-key order, so
//     multi-choice JQ is a pure function of its inputs — map iteration
//     order would otherwise leak into the last ULPs and break both
//     cache determinism and bit-exact WAL replay.
//   - Durability: multi-pool mutations (create, register, ingest, drop)
//     journal through the same WAL and snapshot codecs as the binary
//     registry; records carry the resolved prior strength, and both the
//     pseudo-counts and the derived confusion matrices travel in
//     snapshots, so a recovered pool is bit-identical — signatures,
//     cache keys, and selection outputs carry over restarts (asserted
//     by the multi-pool crash scripts in internal/walltest).
//
// BenchmarkServerMultiSelect records the cached-versus-uncached gap for
// the multi arm; cmd/juryd preloads a pool at boot via -multi-pool (with
// -labels as the fallback label count).
//
// # Durability
//
// juryd started with -data-dir is durable: the registry's Beta
// posteriors and the live collection sessions survive restarts and
// crashes. The design is write-ahead logging plus snapshots
// (internal/wal, internal/server):
//
//   - WAL format: append-only segments of length-prefixed,
//     CRC32-C-checksummed records; segments rotate at a size threshold
//     and are named by the LSN of their first record, so record position
//     is the index. Decoding arbitrary bytes never panics (fuzzed), and
//     only the final segment's tail can legitimately be torn — recovery
//     truncates it; a bad checksum anywhere else fails loudly as
//     corruption rather than silently skipping records.
//   - Journal-then-apply: every mutation (worker register/update/remove,
//     graded vote ingests, session open/vote/finalize/close, multi-pool
//     create/register/ingest/drop, and even the session reaper's
//     evictions) is validated, appended to the WAL
//     under the same lock that orders it, and only then applied in
//     memory. Log order therefore equals application order, a failed
//     append aborts with memory untouched, and a record carries every
//     input replay needs — the resolved prior strength, the voting
//     worker's quality at ingest time, the session id counter — so
//     replay depends on nothing but the log.
//   - Snapshots: every -snapshot-interval (and on graceful shutdown) the
//     full state is serialized to JSON and installed by atomic rename;
//     WAL segments the snapshot covers are deleted. Session log odds are
//     stored as IEEE-754 bit patterns so ±Inf posteriors survive JSON.
//     Recovery = newest snapshot + tail replay; the snapshot(state) +
//     replay(tail) == replay(all) property is tested, along with
//     torn-write, empty-segment and repeated-crash cases, by the
//     internal/walltest harness.
//   - Fsync policy: by default appends ride the OS page cache — they
//     survive kill -9 but not power loss; -fsync flushes per record,
//     trading one disk flush per mutation for full durability. This is
//     the standard WAL tradeoff; pick per deployment.
//   - Group commit: -group-commit (with -fsync) amortizes the flush
//     across concurrent mutations. Each mutation reserves its LSN and
//     stages its framed record under the ordering lock, applies in
//     memory, and is acked only after a shared fsync covers its LSN:
//     the first waiter writes and syncs the whole staged batch with one
//     Write and one Sync, then releases every waiter at or below the
//     synced watermark. The ack contract is unchanged — 2xx still means
//     on stable storage — and the on-disk layout is byte-identical to
//     per-record mode. A failed shared flush refuses the whole batch
//     with 503 and degrades the daemon; nothing unacked survives
//     recovery.
//   - Failure contract: the first WAL failure (append, flush, or fsync)
//     poisons the log — every later operation, Sync and Close included,
//     refuses with the original typed IOError — and the daemon serves
//     reads only. A shutdown that cannot cleanly sync the log is a
//     dirty close: juryd logs it and exits non-zero.
//
// Because replay is deterministic, a recovered registry is bit-identical
// to the pre-crash one — including its pool signatures, so the selection
// cache (rebuilt empty on boot) refills under exactly the keys the
// pre-crash process used, and cached-selection consistency carries over
// restarts unchanged. GET /debug/persistence reports the recovery
// summary (snapshot LSN, records replayed, torn bytes truncated) and
// current log position; jury/serve exposes it as Client.Persistence.
package repro
